// Shared-nothing sharding correctness: warehouse routing, reference-table
// replication, cross-shard 2PC atomicity, per-shard attestation isolation,
// and a differential check that a sharded TPC-C run is indistinguishable
// from a single-engine run on the same seeded workload.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "server/router.h"
#include "tpcc/tpcc.h"

namespace aedb {
namespace {

using client::Driver;
using client::DriverOptions;
using server::Database;
using server::ShardedDatabase;
using server::ShardedOptions;
using types::Value;

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vault_ = std::make_unique<keys::InMemoryKeyVault>();
    ASSERT_TRUE(vault_->CreateKey("kv/shard-enclave", 1024).ok());
    ASSERT_TRUE(registry_.Register(vault_.get()).ok());
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("shard-author")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
    hgs_ = std::make_unique<attestation::HostGuardianService>();
  }

  void Build(uint32_t shards, server::ServerOptions base = {}) {
    ShardedOptions opts;
    opts.shards = shards;
    opts.base = std::move(base);
    sharded_ =
        std::make_unique<ShardedDatabase>(std::move(opts), hgs_.get(), &image_);
    for (uint32_t i = 0; i < shards; ++i) {
      hgs_->RegisterTcgLog(sharded_->shard(i)->platform()->tcg_log());
    }
    ASSERT_TRUE(sharded_->Open().ok());
  }

  std::unique_ptr<Driver> MakeDriver(server::SqlBackend* db) {
    DriverOptions opts;
    opts.enclave_policy.trusted_author_id = image_.AuthorId();
    return std::make_unique<Driver>(db, &registry_, hgs_->signing_public(),
                                    opts);
  }

  std::unique_ptr<keys::InMemoryKeyVault> vault_;
  keys::KeyProviderRegistry registry_;
  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<ShardedDatabase> sharded_;
};

// A statement pinning W_ID routes to shard (w-1) mod N and nowhere else.
TEST_F(ShardTest, WarehouseRoutingPinsToOwningShard) {
  Build(3);
  auto driver = MakeDriver(sharded_.get());
  ASSERT_TRUE(
      driver->ExecuteDdl("CREATE TABLE Warehouse (W_ID INT, W_NAME VARCHAR)")
          .ok());
  for (int w = 1; w <= 6; ++w) {
    auto r = driver->Query(
        "INSERT INTO Warehouse (W_ID, W_NAME) VALUES (@w, @n)",
        {{"w", Value::Int32(w)}, {"n", Value::String("WH" + std::to_string(w))}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // Each shard holds exactly its two warehouses — checked against the shard's
  // engine directly, bypassing the router.
  for (uint32_t s = 0; s < 3; ++s) {
    auto direct =
        sharded_->shard(s)->Execute("SELECT COUNT(*) FROM Warehouse", {});
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    EXPECT_EQ(direct->rows[0][0].i64(), 2) << "shard " << s;
  }
  for (int w = 1; w <= 6; ++w) {
    uint32_t home = sharded_->ShardOfWarehouse(w);
    EXPECT_EQ(home, static_cast<uint32_t>((w - 1) % 3));
    auto direct = sharded_->shard(home)->Execute(
        "SELECT W_NAME FROM Warehouse WHERE W_ID = @w", {Value::Int32(w)});
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(direct->rows.size(), 1u) << "warehouse " << w << " not on home";
    EXPECT_EQ(direct->rows[0][0].str(), "WH" + std::to_string(w));
  }
  // Pinned read through the router finds the row; broadcast COUNT sums shards.
  auto pinned = driver->Query("SELECT W_NAME FROM Warehouse WHERE W_ID = @w",
                              {{"w", Value::Int32(5)}});
  ASSERT_TRUE(pinned.ok());
  ASSERT_EQ(pinned->rows.size(), 1u);
  EXPECT_EQ(pinned->rows[0][0].str(), "WH5");
  auto all = driver->Query("SELECT COUNT(*) FROM Warehouse");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows[0][0].i64(), 6);
}

// Tables without a warehouse column (Item) replicate writes to every shard
// and serve reads from one copy.
TEST_F(ShardTest, ReferenceTablesReplicateWritesReadOnce) {
  Build(3);
  auto driver = MakeDriver(sharded_.get());
  ASSERT_TRUE(
      driver->ExecuteDdl("CREATE TABLE Item (I_ID INT, I_NAME VARCHAR)").ok());
  for (int i = 1; i <= 4; ++i) {
    auto r = driver->Query("INSERT INTO Item (I_ID, I_NAME) VALUES (@i, @n)",
                           {{"i", Value::Int32(i)},
                            {"n", Value::String("item" + std::to_string(i))}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  for (uint32_t s = 0; s < 3; ++s) {
    auto direct = sharded_->shard(s)->Execute("SELECT COUNT(*) FROM Item", {});
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(direct->rows[0][0].i64(), 4) << "replica missing on shard " << s;
  }
  // The router must not return three copies.
  auto through = driver->Query("SELECT COUNT(*) FROM Item");
  ASSERT_TRUE(through.ok());
  EXPECT_EQ(through->rows[0][0].i64(), 4);
}

// A transaction spanning two shards commits atomically through 2PC, and a
// rollback undoes both sides.
TEST_F(ShardTest, CrossShardTransactionIsAtomic) {
  Build(2);
  auto driver = MakeDriver(sharded_.get());
  ASSERT_TRUE(
      driver->ExecuteDdl("CREATE TABLE Warehouse (W_ID INT, W_YTD INT)").ok());
  for (int w = 1; w <= 2; ++w) {
    ASSERT_TRUE(driver
                    ->Query("INSERT INTO Warehouse (W_ID, W_YTD) VALUES (@w, 0)",
                            {{"w", Value::Int32(w)}})
                    .ok());
  }
  ASSERT_EQ(sharded_->ShardOfWarehouse(1), 0u);
  ASSERT_EQ(sharded_->ShardOfWarehouse(2), 1u);

  uint64_t before = sharded_->two_phase_commits();
  uint64_t txn = driver->Begin();
  for (int w = 1; w <= 2; ++w) {
    auto r = driver->Query(
        "UPDATE Warehouse SET W_YTD = @v WHERE W_ID = @w",
        {{"v", Value::Int32(100)}, {"w", Value::Int32(w)}}, txn);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_TRUE(driver->Commit(txn).ok());
  EXPECT_EQ(sharded_->two_phase_commits(), before + 1);
  for (int w = 1; w <= 2; ++w) {
    auto q = driver->Query("SELECT W_YTD FROM Warehouse WHERE W_ID = @w",
                           {{"w", Value::Int32(w)}});
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->rows[0][0].i32(), 100) << "warehouse " << w;
  }

  // Rollback path: both sides revert.
  txn = driver->Begin();
  for (int w = 1; w <= 2; ++w) {
    ASSERT_TRUE(driver
                    ->Query("UPDATE Warehouse SET W_YTD = @v WHERE W_ID = @w",
                            {{"v", Value::Int32(777)}, {"w", Value::Int32(w)}},
                            txn)
                    .ok());
  }
  ASSERT_TRUE(driver->Rollback(txn).ok());
  for (int w = 1; w <= 2; ++w) {
    auto q = driver->Query("SELECT W_YTD FROM Warehouse WHERE W_ID = @w",
                           {{"w", Value::Int32(w)}});
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->rows[0][0].i32(), 100) << "rollback leaked on warehouse " << w;
  }
}

// The AE invariant: each shard's enclave is its own unit of attestation.
// Restarting shard 1's enclave forces the driver to re-attest exactly that
// shard — the other shard's session (and its installed CEKs) stay valid.
TEST_F(ShardTest, PerShardAttestationIsolation) {
  Build(2);
  auto driver = MakeDriver(sharded_.get());
  ASSERT_TRUE(driver
                  ->ProvisionCmk("ShardCMK", vault_->name(), "kv/shard-enclave",
                                 /*enclave_enabled=*/true)
                  .ok());
  ASSERT_TRUE(driver->ProvisionCek("ShardCEK", "ShardCMK").ok());
  ASSERT_TRUE(driver
                  ->ExecuteDdl(
                      "CREATE TABLE Vault (W_ID INT, SECRET VARCHAR "
                      "ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = ShardCEK, "
                      "ENCRYPTION_TYPE = Randomized, ALGORITHM = "
                      "'AEAD_AES_256_CBC_HMAC_SHA_256'))")
                  .ok());
  for (int w = 1; w <= 2; ++w) {
    auto r = driver->Query(
        "INSERT INTO Vault (W_ID, SECRET) VALUES (@w, @s)",
        {{"w", Value::Int32(w)},
         {"s", Value::String("secret-" + std::to_string(w))}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // Parameter encryption is pure client-side work: no enclave needed yet.
  EXPECT_EQ(driver->attestations(), 0);

  auto probe = [&](int w) {
    return driver->Query(
        "SELECT W_ID FROM Vault WHERE SECRET = @s AND W_ID = @w",
        {{"s", Value::String("secret-" + std::to_string(w))},
         {"w", Value::Int32(w)}});
  };
  ASSERT_TRUE(probe(1).ok());
  ASSERT_TRUE(probe(2).ok());
  EXPECT_EQ(driver->attestations(), 2);  // cached sessions, no re-attest

  // Crash+restart shard 1 only: its enclave loses keys and sessions.
  auto rec = sharded_->RestartShard(1);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();

  // Shard 0 traffic is untouched — no re-attestation.
  auto q1 = probe(1);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  ASSERT_EQ(q1->rows.size(), 1u);
  EXPECT_EQ(driver->attestations(), 2);

  // Shard 1 traffic trips kSessionNotFound, and the driver re-attests
  // EXACTLY one shard (2 + 1 sessions across the driver's lifetime).
  auto q2 = probe(2);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  ASSERT_EQ(q2->rows.size(), 1u);
  EXPECT_EQ(driver->attestations(), 3);
  EXPECT_GE(driver->retries(), 1);
}

// Differential check: the same seeded single-terminal TPC-C workload produces
// byte-identical table contents on a 4-shard database and a single engine.
TEST_F(ShardTest, ShardedTpccMatchesSingleShard) {
  tpcc::TpccConfig config;
  config.warehouses = 4;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 8;
  config.items = 30;
  config.initial_orders_per_district = 4;
  config.encryption = tpcc::Encryption::kPlaintext;
  config.seed = 42;
  config.remote_pct = 25;  // plenty of cross-shard traffic

  const std::vector<std::string> tables = {
      "Warehouse", "District", "Customer", "History", "NewOrder",
      "Orders",    "OrderLine", "Item",    "Stock"};

  auto run = [&](server::SqlBackend* db, uint64_t* committed,
                 std::vector<std::vector<std::string>>* dump) {
    auto driver = MakeDriver(db);
    tpcc::TpccLoader loader(driver.get(), config);
    ASSERT_TRUE(loader.CreateSchema().ok());
    Status load = loader.Load();
    ASSERT_TRUE(load.ok()) << load.ToString();
    tpcc::TpccTerminal terminal(driver.get(), config, /*seed=*/7);
    for (int i = 0; i < 120; ++i) {
      Status st = terminal.RunOne();
      ASSERT_TRUE(st.ok()) << "txn " << i << ": " << st.ToString();
    }
    *committed = terminal.committed();
    for (const std::string& t : tables) {
      auto rows = driver->Query("SELECT * FROM " + t);
      ASSERT_TRUE(rows.ok()) << t << ": " << rows.status().ToString();
      std::vector<std::string> flat;
      flat.reserve(rows->rows.size());
      for (const auto& row : rows->rows) {
        std::string line;
        for (const auto& v : row) line += v.ToString() + "|";
        flat.push_back(std::move(line));
      }
      // Broadcast merges have no inter-shard order; canonicalize.
      std::sort(flat.begin(), flat.end());
      dump->push_back(std::move(flat));
    }
  };

  uint64_t single_committed = 0;
  std::vector<std::vector<std::string>> single_dump;
  {
    server::ServerOptions opts;
    Database single(opts, hgs_.get(), &image_);
    hgs_->RegisterTcgLog(single.platform()->tcg_log());
    run(&single, &single_committed, &single_dump);
  }

  Build(4);
  uint64_t sharded_committed = 0;
  std::vector<std::vector<std::string>> sharded_dump;
  run(sharded_.get(), &sharded_committed, &sharded_dump);
  EXPECT_GT(sharded_->two_phase_commits(), 0u)
      << "no cross-shard transactions exercised — differential test is weak";

  EXPECT_EQ(single_committed, sharded_committed);
  ASSERT_EQ(single_dump.size(), sharded_dump.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    EXPECT_EQ(single_dump[t], sharded_dump[t])
        << "table " << tables[t] << " diverged between single and sharded";
  }
}

}  // namespace
}  // namespace aedb
