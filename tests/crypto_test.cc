#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/cbc.h"
#include "crypto/cell_codec.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace aedb::crypto {
namespace {

Bytes FromHex(std::string_view h) {
  auto r = HexDecode(h);
  EXPECT_TRUE(r.ok()) << h;
  return *r;
}

// --- SHA-256, FIPS 180-4 / NIST CAVP vectors ---

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexEncode(Sha256::Hash(Slice())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexEncode(Sha256::Hash(Slice(std::string_view("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  std::string_view msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(HexEncode(Sha256::Hash(Slice(msg))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(Slice(std::string_view(chunk)));
  auto d = h.Finish();
  EXPECT_EQ(HexEncode(Slice(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(Slice(std::string_view(msg).substr(0, split)));
    h.Update(Slice(std::string_view(msg).substr(split)));
    auto d = h.Finish();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Sha256::Hash(Slice(std::string_view(msg))));
  }
}

// --- HMAC-SHA-256, RFC 4231 test cases ---

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HexEncode(HmacSha256::Mac(key, Slice(std::string_view("Hi There")))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HexEncode(HmacSha256::Mac(
                Slice(std::string_view("Jefe")),
                Slice(std::string_view("what do ya want for nothing?")))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  std::string_view msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  EXPECT_EQ(HexEncode(HmacSha256::Mac(key, Slice(msg))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- AES-256, FIPS 197 Appendix C.3 ---

TEST(Aes256Test, Fips197Vector) {
  Bytes key = FromHex("000102030405060708090a0b0c0d0e0f"
                      "101112131415161718191a1b1c1d1e1f");
  Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  Aes256 aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(Slice(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(Bytes(back, back + 16), pt);
}

TEST(Aes256Test, DecryptInvertsEncryptRandomBlocks) {
  Bytes key = SecureRandom(32);
  Aes256 aes(key);
  for (int i = 0; i < 50; ++i) {
    Bytes pt = SecureRandom(16);
    uint8_t ct[16], back[16];
    aes.EncryptBlock(pt.data(), ct);
    aes.DecryptBlock(ct, back);
    EXPECT_EQ(Bytes(back, back + 16), pt);
  }
}

// --- AES-256-CBC, NIST SP 800-38A F.2.5 ---

TEST(CbcTest, Sp80038aFirstBlock) {
  Bytes key = FromHex(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  Bytes iv = FromHex("000102030405060708090a0b0c0d0e0f");
  Bytes pt = FromHex("6bc1bee22e409f96e93d7e117393172a");
  Aes256 aes(key);
  Bytes ct = CbcEncrypt(aes, iv, pt);
  // Our CBC adds a PKCS#7 pad block; the first block must match the NIST
  // no-padding vector.
  ASSERT_EQ(ct.size(), 32u);
  EXPECT_EQ(HexEncode(Slice(ct.data(), 16)),
            "f58c4c04d6e5f1ba779eabfb5f7bfbd6");
}

TEST(CbcTest, RoundTripAllSmallSizes) {
  Bytes key = SecureRandom(32);
  Bytes iv = SecureRandom(16);
  Aes256 aes(key);
  for (size_t n = 0; n <= 70; ++n) {
    Bytes pt = SecureRandom(n);
    Bytes ct = CbcEncrypt(aes, iv, pt);
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), pt.size());
    auto back = CbcDecrypt(aes, iv, ct);
    ASSERT_TRUE(back.ok()) << n;
    EXPECT_EQ(*back, pt);
  }
}

TEST(CbcTest, RejectsTruncatedCiphertext) {
  Bytes key = SecureRandom(32);
  Bytes iv = SecureRandom(16);
  Aes256 aes(key);
  Bytes ct = CbcEncrypt(aes, iv, SecureRandom(32));
  EXPECT_FALSE(CbcDecrypt(aes, iv, Slice(ct.data(), ct.size() - 1)).ok());
  EXPECT_FALSE(CbcDecrypt(aes, iv, Slice(ct.data(), 0)).ok());
}

TEST(CbcTest, BadPaddingDetected) {
  Bytes key = SecureRandom(32);
  Bytes iv(16, 0);
  Aes256 aes(key);
  // Random final block: padding check should almost surely fail.
  int failures = 0;
  for (int i = 0; i < 20; ++i) {
    Bytes garbage = SecureRandom(16);
    if (!CbcDecrypt(aes, iv, garbage).ok()) ++failures;
  }
  EXPECT_GE(failures, 18);
}

// --- HMAC-DRBG ---

TEST(DrbgTest, DeterministicForSeed) {
  Bytes seed(32, 0x42);
  HmacDrbg a(seed), b(seed);
  EXPECT_EQ(a.Generate(64), b.Generate(64));
}

TEST(DrbgTest, PersonalizationChangesStream) {
  Bytes seed(32, 0x42);
  HmacDrbg a(seed, Slice(std::string_view("x")));
  HmacDrbg b(seed, Slice(std::string_view("y")));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, ReseedChangesStream) {
  Bytes seed(32, 0x42);
  HmacDrbg a(seed), b(seed);
  b.Reseed(Slice(std::string_view("fresh entropy")));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, SecureRandomProducesDistinctValues) {
  EXPECT_NE(SecureRandom(32), SecureRandom(32));
}

// --- Cell codec (AEAD_AES_256_CBC_HMAC_SHA_256) ---

class CellCodecTest : public ::testing::Test {
 protected:
  Bytes cek_ = SecureRandom(32);
  CellCodec codec_{cek_};
};

TEST_F(CellCodecTest, RandomizedRoundTrip) {
  Bytes pt = Slice(std::string_view("attack at dawn")).ToBytes();
  Bytes cell = codec_.Encrypt(pt, EncryptionScheme::kRandomized);
  auto back = codec_.Decrypt(cell);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
}

TEST_F(CellCodecTest, DeterministicRoundTrip) {
  Bytes pt = Slice(std::string_view("1985-06-12")).ToBytes();
  Bytes cell = codec_.Encrypt(pt, EncryptionScheme::kDeterministic);
  auto back = codec_.Decrypt(cell);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
}

TEST_F(CellCodecTest, DeterministicIsDeterministic) {
  Bytes pt = Slice(std::string_view("SMITH")).ToBytes();
  EXPECT_EQ(codec_.Encrypt(pt, EncryptionScheme::kDeterministic),
            codec_.Encrypt(pt, EncryptionScheme::kDeterministic));
}

TEST_F(CellCodecTest, RandomizedIsRandomized) {
  Bytes pt = Slice(std::string_view("SMITH")).ToBytes();
  EXPECT_NE(codec_.Encrypt(pt, EncryptionScheme::kRandomized),
            codec_.Encrypt(pt, EncryptionScheme::kRandomized));
}

TEST_F(CellCodecTest, DeterministicDistinguishesValues) {
  EXPECT_NE(codec_.Encrypt(Slice(std::string_view("a")).ToBytes(),
                           EncryptionScheme::kDeterministic),
            codec_.Encrypt(Slice(std::string_view("b")).ToBytes(),
                           EncryptionScheme::kDeterministic));
}

TEST_F(CellCodecTest, TamperedCellFailsMac) {
  Bytes cell = codec_.Encrypt(Slice(std::string_view("secret")).ToBytes(),
                              EncryptionScheme::kRandomized);
  for (size_t i = 0; i < cell.size(); i += 7) {
    Bytes tampered = cell;
    tampered[i] ^= 0x01;
    auto r = codec_.Decrypt(tampered);
    EXPECT_FALSE(r.ok()) << "byte " << i;
  }
}

TEST_F(CellCodecTest, WrongKeyFails) {
  Bytes cell = codec_.Encrypt(Slice(std::string_view("secret")).ToBytes(),
                              EncryptionScheme::kRandomized);
  CellCodec other(SecureRandom(32));
  EXPECT_FALSE(other.Decrypt(cell).ok());
}

TEST_F(CellCodecTest, EmptyPlaintextRoundTrip) {
  Bytes cell = codec_.Encrypt(Slice(), EncryptionScheme::kRandomized);
  auto back = codec_.Decrypt(cell);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST_F(CellCodecTest, RejectsGarbage) {
  EXPECT_FALSE(codec_.Decrypt(Slice(std::string_view("junk"))).ok());
  Bytes wrong_version(CellCodec::kMinCellSize, 0);
  wrong_version[0] = 0x7f;
  EXPECT_FALSE(codec_.Decrypt(wrong_version).ok());
}

TEST_F(CellCodecTest, LooksLikeCell) {
  Bytes cell = codec_.Encrypt(Slice(std::string_view("x")).ToBytes(),
                              EncryptionScheme::kRandomized);
  EXPECT_TRUE(CellCodec::LooksLikeCell(cell));
  EXPECT_FALSE(CellCodec::LooksLikeCell(Slice(std::string_view("nope"))));
}

TEST_F(CellCodecTest, CellLayoutSizes) {
  // version(1) + MAC(32) + IV(16) + one padded block for short plaintext.
  Bytes cell = codec_.Encrypt(Slice(std::string_view("hi")).ToBytes(),
                              EncryptionScheme::kRandomized);
  EXPECT_EQ(cell.size(), 1u + 32u + 16u + 16u);
  EXPECT_EQ(cell[0], CellCodec::kAlgorithmVersion);
}

// Property sweep: both schemes round-trip across sizes.
class CellCodecSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CellCodecSizeSweep, RoundTripBothSchemes) {
  Bytes cek = SecureRandom(32);
  CellCodec codec(cek);
  Bytes pt = SecureRandom(GetParam());
  for (auto scheme :
       {EncryptionScheme::kDeterministic, EncryptionScheme::kRandomized}) {
    Bytes cell = codec.Encrypt(pt, scheme);
    auto back = codec.Decrypt(cell);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, pt);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CellCodecSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 255,
                                           256, 1000, 4096));

}  // namespace
}  // namespace aedb::crypto
