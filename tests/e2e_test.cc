#include <gtest/gtest.h>

#include <memory>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "server/database.h"

namespace aedb {
namespace {

using client::Driver;
using client::DriverOptions;
using server::Database;
using server::ServerOptions;
using types::EncKind;
using types::TypeId;
using types::Value;

/// Full deployment fixture: key vault, HGS, enclave author, server, driver.
class E2eTest : public ::testing::Test {
 protected:
  static constexpr const char* kVaultPath = "https://vault.example/keys/cmk1";
  static constexpr const char* kVaultPathNoEnclave =
      "https://vault.example/keys/cmk2";

  void SetUp() override {
    vault_ = std::make_unique<keys::InMemoryKeyVault>();
    ASSERT_TRUE(vault_->CreateKey(kVaultPath, 1024).ok());
    ASSERT_TRUE(vault_->CreateKey(kVaultPathNoEnclave, 1024).ok());
    ASSERT_TRUE(registry_.Register(vault_.get()).ok());

    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("e2e-author")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
    hgs_ = std::make_unique<attestation::HostGuardianService>();

    ServerOptions opts;
    opts.capture_tds = true;
    db_ = std::make_unique<Database>(opts, hgs_.get(), &image_);
    hgs_->RegisterTcgLog(db_->platform()->tcg_log());

    DriverOptions driver_opts;
    driver_opts.enclave_policy.trusted_author_id = image_.AuthorId();
    driver_ = std::make_unique<Driver>(db_.get(), &registry_,
                                       hgs_->signing_public(), driver_opts);
  }

  // Standard schema: an accounts table with one DET and two RND columns.
  void ProvisionAndCreateSchema() {
    ASSERT_TRUE(driver_
                    ->ProvisionCmk("MyCMK", vault_->name(), kVaultPath,
                                   /*enclave_enabled=*/true)
                    .ok());
    ASSERT_TRUE(driver_->ProvisionCek("MyCEK", "MyCMK").ok());
    Status st = driver_->ExecuteDdl(
        "CREATE TABLE Account ("
        "  AcctID INT NOT NULL,"
        "  Branch VARCHAR(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = MyCEK,"
        "    ENCRYPTION_TYPE = Deterministic,"
        "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'),"
        "  AcctBal BIGINT ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = MyCEK,"
        "    ENCRYPTION_TYPE = Randomized,"
        "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'),"
        "  Owner VARCHAR(40) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = MyCEK,"
        "    ENCRYPTION_TYPE = Randomized,"
        "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))");
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  void InsertAccount(int id, const std::string& branch, int64_t bal,
                     const std::string& owner) {
    auto r = driver_->Query(
        "INSERT INTO Account (AcctID, Branch, AcctBal, Owner) "
        "VALUES (@id, @branch, @bal, @owner)",
        {{"id", Value::Int32(id)},
         {"branch", Value::String(branch)},
         {"bal", Value::Int64(bal)},
         {"owner", Value::String(owner)}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  void LoadSampleAccounts() {
    InsertAccount(1, "Seattle", 100, "SMITH");
    InsertAccount(2, "Seattle", 200, "SMYTHE");
    InsertAccount(3, "Zurich", 200, "BARNES");
    InsertAccount(4, "Zurich", 550, "SMITHSON");
    InsertAccount(5, "Berlin", 50, "ADAMS");
  }

  std::unique_ptr<keys::InMemoryKeyVault> vault_;
  keys::KeyProviderRegistry registry_;
  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Driver> driver_;
};

TEST_F(E2eTest, InsertAndPointLookupOnDetColumn) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  // DET equality: evaluated on ciphertext, no enclave needed.
  auto r = driver_->Query("SELECT AcctID, AcctBal FROM Account WHERE Branch = @b",
                          {{"b", Value::String("Seattle")}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
  // Results came back decrypted.
  for (const auto& row : r->rows) {
    EXPECT_EQ(row[1].type(), TypeId::kInt64);
  }
}

TEST_F(E2eTest, EnclaveEqualityAndRangeOnRndColumn) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  // The running example: select * from T where value = @v over RND (§3).
  auto eq = driver_->Query("SELECT AcctID FROM Account WHERE AcctBal = @v",
                           {{"v", Value::Int64(200)}});
  ASSERT_TRUE(eq.ok()) << eq.status().ToString();
  EXPECT_EQ(eq->rows.size(), 2u);
  EXPECT_GE(db_->enclave()->stats().evals.load(), 1u);

  auto range = driver_->Query(
      "SELECT AcctID FROM Account WHERE AcctBal BETWEEN @lo AND @hi",
      {{"lo", Value::Int64(100)}, {"hi", Value::Int64(300)}});
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(range->rows.size(), 3u);
}

TEST_F(E2eTest, EnclaveLikeOnRndColumn) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  auto r = driver_->Query("SELECT AcctID FROM Account WHERE Owner LIKE @p",
                          {{"p", Value::String("SMI%")}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);  // SMITH, SMITHSON
}

TEST_F(E2eTest, EncryptedRangeIndexServesRangeQueries) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  ASSERT_TRUE(driver_->ExecuteDdl("CREATE INDEX idx_bal ON Account (AcctBal)").ok());
  const sql::IndexDef* index = *db_->catalog().GetIndex("idx_bal");
  EXPECT_EQ(index->kind, sql::IndexKind::kRange);
  uint64_t comparisons_before = db_->engine().index_tree(index->id)->comparisons();
  EXPECT_GT(comparisons_before, 0u);  // the build sorted via the enclave

  auto r = driver_->Query("SELECT AcctID FROM Account WHERE AcctBal >= @lo",
                          {{"lo", Value::Int64(200)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 3u);
  EXPECT_GT(db_->engine().index_tree(index->id)->comparisons(), comparisons_before);
}

TEST_F(E2eTest, EqualityIndexOnDetColumn) {
  ProvisionAndCreateSchema();
  ASSERT_TRUE(
      driver_->ExecuteDdl("CREATE INDEX idx_branch ON Account (Branch)").ok());
  const sql::IndexDef* index = *db_->catalog().GetIndex("idx_branch");
  EXPECT_EQ(index->kind, sql::IndexKind::kEquality);
  LoadSampleAccounts();
  auto r = driver_->Query("SELECT AcctID FROM Account WHERE Branch = @b",
                          {{"b", Value::String("Zurich")}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(E2eTest, UpdateAndDeleteThroughEnclavePredicates) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  auto upd = driver_->Query(
      "UPDATE Account SET AcctBal = @new WHERE AcctBal = @old",
      {{"new", Value::Int64(999)}, {"old", Value::Int64(200)}});
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(upd->rows[0][0].i64(), 2);

  auto del = driver_->Query("DELETE FROM Account WHERE AcctBal > @min",
                            {{"min", Value::Int64(500)}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del->rows[0][0].i64(), 3);  // the two 999s plus 550

  auto remaining = driver_->Query("SELECT COUNT(*) FROM Account");
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(remaining->rows[0][0].i64(), 2);
}

TEST_F(E2eTest, TransactionsRollBack) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  uint64_t txn = driver_->Begin();
  auto r = driver_->Query("DELETE FROM Account WHERE AcctID = @id",
                          {{"id", Value::Int32(1)}}, txn);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(driver_->Rollback(txn).ok());
  auto count = driver_->Query("SELECT COUNT(*) FROM Account");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].i64(), 5);
}

TEST_F(E2eTest, GroupByDetCiphertextEquality) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  auto r = driver_->Query(
      "SELECT Branch, COUNT(*) FROM Account GROUP BY Branch");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 3u);
  // The branch values decrypt for the client.
  for (const auto& row : r->rows) {
    EXPECT_EQ(row[0].type(), TypeId::kString);
  }
}

TEST_F(E2eTest, DetEquiJoin) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  ASSERT_TRUE(driver_
                  ->ExecuteDdl(
                      "CREATE TABLE BranchInfo (BName VARCHAR(20) ENCRYPTED "
                      "WITH (COLUMN_ENCRYPTION_KEY = MyCEK, ENCRYPTION_TYPE = "
                      "Deterministic, ALGORITHM = "
                      "'AEAD_AES_256_CBC_HMAC_SHA_256'), Region VARCHAR(10))")
                  .ok());
  for (auto [name, region] :
       {std::pair<const char*, const char*>{"Seattle", "US"},
        {"Zurich", "EU"},
        {"Berlin", "EU"}}) {
    auto r = driver_->Query(
        "INSERT INTO BranchInfo (BName, Region) VALUES (@n, @r)",
        {{"n", Value::String(name)}, {"r", Value::String(region)}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  auto joined = driver_->Query(
      "SELECT AcctID, Region FROM Account JOIN BranchInfo ON "
      "Account.Branch = BranchInfo.BName WHERE Region = @reg",
      {{"reg", Value::String("EU")}});
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(joined->rows.size(), 3u);  // Zurich x2 + Berlin x1
}

TEST_F(E2eTest, InitialEncryptionThroughEnclave) {
  ProvisionAndCreateSchema();
  // A plaintext column encrypted in place — no client round trip (§2.4.2).
  ASSERT_TRUE(driver_->ExecuteDdl("CREATE TABLE People (Id INT, Ssn VARCHAR(11))").ok());
  for (int i = 0; i < 10; ++i) {
    auto r = driver_->Query("INSERT INTO People (Id, Ssn) VALUES (@i, @s)",
                            {{"i", Value::Int32(i)},
                             {"s", Value::String("123-45-000" + std::to_string(i))}});
    ASSERT_TRUE(r.ok());
  }
  Status st = driver_->ExecuteEnclaveDdl(
      "ALTER TABLE People ALTER COLUMN Ssn VARCHAR(11) ENCRYPTED WITH ("
      "COLUMN_ENCRYPTION_KEY = MyCEK, ENCRYPTION_TYPE = Randomized, "
      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')");
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Data is now ciphertext on pages but still queryable via the enclave.
  auto r = driver_->Query("SELECT Id FROM People WHERE Ssn = @s",
                          {{"s", Value::String("123-45-0007")}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].i32(), 7);

  // And the pages no longer contain the SSN plaintext.
  std::string needle = "123-45-0007";
  bool found = false;
  db_->engine().ForEachPageRaw([&](uint32_t, Slice page) {
    std::string_view haystack(reinterpret_cast<const char*>(page.data()),
                              page.size());
    if (haystack.find(needle) != std::string_view::npos) found = true;
  });
  EXPECT_FALSE(found);
}

TEST_F(E2eTest, UnauthorizedInitialEncryptionRejected) {
  ProvisionAndCreateSchema();
  ASSERT_TRUE(driver_->ExecuteDdl("CREATE TABLE P2 (Id INT, S VARCHAR(8))").ok());
  auto ins = driver_->Query("INSERT INTO P2 (Id, S) VALUES (@i, @s)",
                            {{"i", Value::Int32(1)}, {"s", Value::String("x")}});
  ASSERT_TRUE(ins.ok());
  // Bypass the driver's authorization step: the enclave must refuse.
  Status st = db_->ExecuteDdl(
      "ALTER TABLE P2 ALTER COLUMN S VARCHAR(8) ENCRYPTED WITH ("
      "COLUMN_ENCRYPTION_KEY = MyCEK, ENCRYPTION_TYPE = Randomized, "
      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')",
      driver_->session_id());
  EXPECT_FALSE(st.ok());
}

TEST_F(E2eTest, KeyRotationThroughEnclave) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  ASSERT_TRUE(driver_->ProvisionCek("MyCEK2", "MyCMK").ok());
  Status st = driver_->ExecuteEnclaveDdl(
      "ALTER TABLE Account ALTER COLUMN Owner VARCHAR(40) ENCRYPTED WITH ("
      "COLUMN_ENCRYPTION_KEY = MyCEK2, ENCRYPTION_TYPE = Randomized, "
      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto r = driver_->Query("SELECT AcctID FROM Account WHERE Owner = @o",
                          {{"o", Value::String("BARNES")}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_F(E2eTest, NonAeConnectionSkipsDescribe) {
  ProvisionAndCreateSchema();
  ASSERT_TRUE(driver_->ExecuteDdl("CREATE TABLE Plain (a INT, b INT)").ok());
  DriverOptions pt_opts;
  pt_opts.column_encryption_enabled = false;
  Driver pt_driver(db_.get(), &registry_, hgs_->signing_public(), pt_opts);
  uint64_t before = db_->describe_calls();
  auto r = pt_driver.Query("INSERT INTO Plain (a, b) VALUES (@a, @b)",
                           {{"a", Value::Int32(1)}, {"b", Value::Int32(2)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(db_->describe_calls(), before);  // no extra round trip
}

TEST_F(E2eTest, DescribeCachingAvoidsRoundTrips) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  uint64_t before = db_->describe_calls();
  for (int i = 0; i < 5; ++i) {
    auto r = driver_->Query("SELECT AcctID FROM Account WHERE Branch = @b",
                            {{"b", Value::String("Seattle")}});
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(db_->describe_calls() - before, 1u);
  EXPECT_LE(driver_->attestations(), 1);
  EXPECT_LE(vault_->unwrap_calls(), 2);  // CEK cache works
}

TEST_F(E2eTest, CrashRecoveryWithDeferredTransactionsEndToEnd) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  ASSERT_TRUE(driver_->ExecuteDdl("CREATE INDEX idx_bal ON Account (AcctBal)").ok());

  // Leave a transaction in flight, then crash.
  uint64_t txn = driver_->Begin();
  auto r = driver_->Query(
      "INSERT INTO Account (AcctID, Branch, AcctBal, Owner) VALUES "
      "(@i, @b, @v, @o)",
      {{"i", Value::Int32(99)},
       {"b", Value::String("Oslo")},
       {"v", Value::Int64(777)},
       {"o", Value::String("LOSER")}},
      txn);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  auto recovery = db_->Restart();  // enclave keys gone, WAL replayed
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_FALSE(recovery->deferred_txns.empty());
  EXPECT_FALSE(db_->engine().CanTruncateLog().ok());

  // Client reconnects; the driver re-attests and re-sends keys, which
  // resolves the deferred transactions (§4.5).
  driver_->InvalidateSession();
  auto q = driver_->Query("SELECT AcctID FROM Account WHERE AcctBal >= @v",
                          {{"v", Value::Int64(100)}});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->rows.size(), 4u);  // loser insert rolled back
  EXPECT_FALSE(db_->engine().HasDeferredTxns());
  EXPECT_TRUE(db_->engine().CanTruncateLog().ok());
}

TEST_F(E2eTest, ClientSideToolForEnclaveDisabledKeys) {
  ProvisionAndCreateSchema();
  ASSERT_TRUE(driver_
                  ->ProvisionCmk("ColdCMK", vault_->name(), kVaultPathNoEnclave,
                                 /*enclave_enabled=*/false)
                  .ok());
  ASSERT_TRUE(driver_->ProvisionCek("ColdCEK", "ColdCMK").ok());
  ASSERT_TRUE(driver_->ExecuteDdl("CREATE TABLE Cards (Id INT, Pan VARCHAR(19))").ok());
  for (int i = 0; i < 5; ++i) {
    auto r = driver_->Query("INSERT INTO Cards (Id, Pan) VALUES (@i, @p)",
                            {{"i", Value::Int32(i)},
                             {"p", Value::String("4111-1111-" + std::to_string(i))}});
    ASSERT_TRUE(r.ok());
  }
  // In-place DDL must refuse (enclave-disabled key)...
  Status direct = db_->ExecuteDdl(
      "ALTER TABLE Cards ALTER COLUMN Pan VARCHAR(19) ENCRYPTED WITH ("
      "COLUMN_ENCRYPTION_KEY = ColdCEK, ENCRYPTION_TYPE = Deterministic, "
      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')");
  EXPECT_EQ(direct.code(), StatusCode::kNotSupported);
  // ...so the client tool does the round trip.
  Status st = driver_->ClientSideEncryptColumn("Cards", "Pan", "ColdCEK",
                                               EncKind::kDeterministic, "Id");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto r = driver_->Query("SELECT Id FROM Cards WHERE Pan = @p",
                          {{"p", Value::String("4111-1111-3")}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].i32(), 3);
}

// --- Figure 5: operation leakage / adversary view ---

class LeakageTest : public E2eTest {};

TEST_F(LeakageTest, PlaintextNeverOnPagesWalOrWire) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  auto r = driver_->Query("SELECT Owner FROM Account WHERE AcctBal = @v",
                          {{"v", Value::Int64(550)}});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].str(), "SMITHSON");

  auto contains = [](Slice haystack, std::string_view needle) {
    std::string_view h(reinterpret_cast<const char*>(haystack.data()),
                       haystack.size());
    return h.find(needle) != std::string_view::npos;
  };
  // Pages: encrypted columns are cells; plaintext only for AcctID.
  for (std::string_view secret : {"SMITHSON", "Seattle", "Zurich"}) {
    bool leaked = false;
    db_->engine().ForEachPageRaw([&](uint32_t, Slice page) {
      if (contains(page, secret)) leaked = true;
    });
    EXPECT_FALSE(leaked) << secret << " on a page";
    // WAL.
    EXPECT_FALSE(contains(db_->engine().wal().RawBytes(), secret))
        << secret << " in the WAL";
    // TDS request/response (the balance went over the wire encrypted; the
    // owner came back encrypted).
    EXPECT_FALSE(contains(db_->tds_capture().last_request, secret));
    EXPECT_FALSE(contains(db_->tds_capture().last_response, secret));
  }
}

TEST_F(LeakageTest, DetLeaksFrequenciesRndDoesNot) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  // Adversary scans pages and collects cells per column. The two Seattle
  // rows share a Branch cell (DET) but their AcctBal=200 twins (rows 2,3)
  // have distinct cells (RND).
  const sql::TableDef* table = *db_->catalog().GetTable("Account");
  std::map<int, std::vector<Bytes>> cells_by_column;
  db_->engine().table(table->id)->Scan([&](const storage::Rid&, Slice record) {
    auto row = sql::DecodeRow(record, table->columns.size());
    for (size_t c = 0; c < row->size(); ++c) {
      if ((*row)[c].type() == TypeId::kBinary) {
        cells_by_column[static_cast<int>(c)].push_back((*row)[c].bin());
      }
    }
    return true;
  });
  // Branch is column 1 (DET): Seattle repeats -> duplicate ciphertexts.
  auto& branch_cells = cells_by_column[1];
  std::set<Bytes> distinct_branches(branch_cells.begin(), branch_cells.end());
  EXPECT_EQ(branch_cells.size(), 5u);
  EXPECT_EQ(distinct_branches.size(), 3u);  // frequency leak (Figure 5 row 1)
  // AcctBal is column 2 (RND): equal balances still yield distinct cells.
  auto& bal_cells = cells_by_column[2];
  std::set<Bytes> distinct_bals(bal_cells.begin(), bal_cells.end());
  EXPECT_EQ(distinct_bals.size(), bal_cells.size());  // IND-CPA, no dupes
}

TEST_F(LeakageTest, RangeIndexRevealsOrderingOnly) {
  ProvisionAndCreateSchema();
  LoadSampleAccounts();
  ASSERT_TRUE(driver_->ExecuteDdl("CREATE INDEX idx_bal ON Account (AcctBal)").ok());
  // The adversary can read the B+-tree's ordering of ciphertext keys
  // (Figure 5 row 2) — but the cells themselves stay opaque.
  const sql::IndexDef* index = *db_->catalog().GetIndex("idx_bal");
  storage::BTree* tree = db_->engine().index_tree(index->id);
  size_t entries = 0;
  for (auto it = tree->Begin(); it.Valid(); it.Next()) {
    auto key = it.key();
    ASSERT_TRUE(key.ok());
    EXPECT_TRUE(crypto::CellCodec::LooksLikeCell(*key));
    ++entries;
  }
  EXPECT_EQ(entries, 5u);
}

}  // namespace
}  // namespace aedb
