// Connection-scale behaviour of the event-driven server (labelled
// `net_scale`; also part of the verify.sh --tsan lane):
//
//   - thousands of simultaneously live idle sockets must cost (nearly)
//     nothing: queries on other connections still meet their deadlines,
//   - the event-loop timer reaps idle connections (idle_timeout_ms) and
//     sockets that never complete a handshake (handshake_timeout_ms),
//   - a reader slower than write_buffer_cap is disconnected instead of
//     buffering the server into the ground,
//   - a full run queue answers a typed kOverloaded + retry-after straight
//     from the event loop, and the connection remains usable afterwards,
//   - ServerStatsSnapshot gives one coherent read of the gauges.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/driver.h"
#include "common/query_context.h"
#include "crypto/drbg.h"
#include "fault/fault.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "server/database.h"

#if defined(__SANITIZE_THREAD__)
#define AEDB_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AEDB_TSAN 1
#endif
#endif

namespace aedb {
namespace {

using client::Driver;
using client::DriverOptions;
using types::Value;
using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Under TSan every instrumented round trip costs ~an order of magnitude
// more; keep the semantics (many live sockets) but shrink the herd.
#ifdef AEDB_TSAN
constexpr size_t kIdleHerd = 256;
#else
constexpr size_t kIdleHerd = 2000;
#endif

/// Raises RLIMIT_NOFILE to at least `need` fds if the hard limit allows.
/// Returns false when the environment simply cannot host the test.
bool EnsureFdBudget(rlim_t need) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return false;
  if (rl.rlim_cur >= need) return true;
  rlimit want = rl;
  want.rlim_cur = rl.rlim_max == RLIM_INFINITY
                      ? need
                      : std::min<rlim_t>(need, rl.rlim_max);
  (void)::setrlimit(RLIMIT_NOFILE, &want);
  return ::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur >= need;
}

/// Minimal blocking client speaking raw frames (handshake + ping only).
class RawConn {
 public:
  explicit RawConn(uint16_t port, int recv_timeout_sec = 8) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    timeval tv{recv_timeout_sec, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() { Close(); }
  RawConn(RawConn&& o) noexcept
      : fd_(o.fd_), connected_(o.connected_) {
    o.fd_ = -1;
    o.connected_ = false;
  }

  bool connected() const { return connected_; }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  int fd() const { return fd_; }

  bool Send(Slice data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t w =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  bool ReadFrame(net::MsgType* type, Bytes* payload) {
    Bytes header(net::kFrameHeaderSize);
    if (!ReadFull(header.data(), header.size())) return false;
    auto h = net::DecodeFrameHeader(header, net::kDefaultMaxPayload);
    if (!h.ok()) return false;
    payload->resize(h->payload_size);
    if (h->payload_size > 0 && !ReadFull(payload->data(), payload->size())) {
      return false;
    }
    *type = h->type;
    return true;
  }

  bool Handshake() {
    net::HandshakeReq req;
    if (!Send(net::EncodeFrame(net::MsgType::kHandshake, req.Encode()))) {
      return false;
    }
    net::MsgType type;
    Bytes payload;
    return ReadFrame(&type, &payload) && type == net::MsgType::kHandshakeAck;
  }

  bool Ping() {
    if (!Send(net::EncodeFrame(net::MsgType::kPing,
                               Slice(std::string_view("sc"))))) {
      return false;
    }
    net::MsgType type;
    Bytes payload;
    return ReadFrame(&type, &payload) && type == net::MsgType::kPong;
  }

  /// True when the server closes the stream (optionally after data we
  /// discard); false on recv timeout.
  bool DrainToEof() {
    uint8_t buf[4096];
    for (;;) {
      ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r == 0) return true;
      if (r < 0) return false;
    }
  }

 private:
  bool ReadFull(uint8_t* buf, size_t n) {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::recv(fd_, buf + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
};

class NetScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Global().Reset();
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("net-scale-author")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
    hgs_ = std::make_unique<attestation::HostGuardianService>();
  }

  void TearDown() override {
    if (server_) server_->Stop();
    fault::FaultRegistry::Global().DisarmAll();
  }

  std::unique_ptr<server::Database> MakeDb(server::ServerOptions opts = {}) {
    auto db = std::make_unique<server::Database>(opts, hgs_.get(), &image_);
    hgs_->RegisterTcgLog(db->platform()->tcg_log());
    return db;
  }

  void StartServer(server::Database* db, net::ServerConfig config) {
    server_ = std::make_unique<net::Server>(db, config);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<Driver> MakeSocketDriver(uint32_t deadline_ms = 0) {
    net::SocketTransport::Options topts;
    topts.port = server_->port();
    topts.timeout_ms = 10'000;
    auto transport = net::SocketTransport::Connect(topts);
    if (!transport.ok()) return nullptr;
    DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    dopts.deadline_ms = deadline_ms;
    return std::make_unique<Driver>(std::move(transport).value(), &registry_,
                                    hgs_->signing_public(), dopts);
  }

  /// Polls the live-connection gauge until it reaches `expect` or ~5 s pass.
  bool WaitActive(uint64_t expect) {
    for (int i = 0; i < 250; ++i) {
      if (server_->stats().connections_active.load() == expect) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  keys::KeyProviderRegistry registry_;
  std::unique_ptr<net::Server> server_;
};

// ===========================================================================
// Scale: thousands of live idle sockets
// ===========================================================================

TEST_F(NetScaleTest, ThousandsOfIdleSocketsDontStarveActiveQueries) {
  if (!EnsureFdBudget(kIdleHerd + 512)) {
    GTEST_SKIP() << "RLIMIT_NOFILE too low for " << kIdleHerd << " sockets";
  }
  auto db = MakeDb();
  ASSERT_TRUE(db->ExecuteDdl("CREATE TABLE T (a INT NOT NULL, b INT)").ok());
  ASSERT_TRUE(db->ExecuteDdl("CREATE INDEX T_A ON T (a)").ok());
  for (int i = 0; i < 8; ++i) {
    auto r = db->Execute("INSERT INTO T (a, b) VALUES (@a, @b)",
                         {Value::Int32(i), Value::Int32(2 * i)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  net::ServerConfig config;
  config.backlog = 1024;
  StartServer(db.get(), config);

  // A herd of handshaken-then-silent connections. Each costs the server one
  // fd + one epoll registration + a Connection object — no thread.
  std::vector<RawConn> herd;
  herd.reserve(kIdleHerd);
  for (size_t i = 0; i < kIdleHerd; ++i) {
    herd.emplace_back(server_->port());
    ASSERT_TRUE(herd.back().connected()) << "connect #" << i;
    ASSERT_TRUE(herd.back().Handshake()) << "handshake #" << i;
  }
  EXPECT_GE(server_->stats().connections_active.load(), kIdleHerd);

  // With the herd parked, a working client must still meet tight deadlines:
  // the sockets are live, the event loop just has nothing to do for them.
  auto driver = MakeSocketDriver(/*deadline_ms=*/2000);
  ASSERT_NE(driver, nullptr);
  double worst_ms = 0;
  for (int i = 0; i < 25; ++i) {
    auto t0 = Clock::now();
    auto r = driver->Query("SELECT b FROM T WHERE a = " + std::to_string(i % 8));
    double ms = ElapsedMs(t0);
    worst_ms = std::max(worst_ms, ms);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].i32(), 2 * (i % 8)) << "wrong result under scale";
  }
  EXPECT_LT(worst_ms, 2000.0) << "deadline blown with an idle herd attached";

  // The herd can still be spoken to (spot check — they were never reaped).
  ASSERT_TRUE(herd.front().Ping());
  ASSERT_TRUE(herd.back().Ping());

  // Mass disconnect: the gauge must come back down (EOF reaping at scale).
  for (auto& c : herd) c.Close();
  EXPECT_TRUE(WaitActive(1)) << "live-connection gauge stuck at "
                             << server_->stats().connections_active.load();

  auto snap = server_->SnapshotStats();
  EXPECT_GE(snap.connections_accepted, kIdleHerd + 1);
  EXPECT_GT(snap.epoll_wakeups, 0u);
  EXPECT_EQ(snap.protocol_errors, 0u);
}

// ===========================================================================
// Event-loop timer: idle reaping and handshake timeouts
// ===========================================================================

TEST_F(NetScaleTest, IdleConnectionsAreReapedAfterIdleTimeout) {
  auto db = MakeDb();
  net::ServerConfig config;
  config.idle_timeout_ms = 300;
  StartServer(db.get(), config);

  std::vector<RawConn> conns;
  for (int i = 0; i < 5; ++i) {
    conns.emplace_back(server_->port());
    ASSERT_TRUE(conns.back().connected());
    ASSERT_TRUE(conns.back().Handshake());
  }
  // Handshaken then silent: the sweep must cut each one (clean EOF, no RST).
  for (auto& c : conns) {
    EXPECT_TRUE(c.DrainToEof()) << "idle connection not reaped";
  }
  EXPECT_TRUE(WaitActive(0));
  EXPECT_GE(server_->stats().idle_reaps.load(), 5u);
  EXPECT_EQ(server_->stats().protocol_errors.load(), 0u)
      << "idle reap misclassified as a protocol error";
}

TEST_F(NetScaleTest, ActivityDefersIdleReaping) {
  auto db = MakeDb();
  net::ServerConfig config;
  config.idle_timeout_ms = 600;
  StartServer(db.get(), config);

  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Handshake());
  // Keep touching the connection at half the idle budget: it must survive
  // well past several multiples of idle_timeout_ms.
  auto t0 = Clock::now();
  while (ElapsedMs(t0) < 1800.0) {
    ASSERT_TRUE(conn.Ping()) << "active connection reaped as idle";
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  EXPECT_EQ(server_->stats().idle_reaps.load(), 0u);
}

TEST_F(NetScaleTest, SilentSocketsAreReapedAtHandshakeTimeout) {
  auto db = MakeDb();
  net::ServerConfig config;
  config.handshake_timeout_ms = 300;
  StartServer(db.get(), config);

  // Four sockets that connect and say nothing — the cheapest thing a
  // misbehaving client can hoard — plus one that handshakes promptly.
  std::vector<RawConn> silent;
  for (int i = 0; i < 4; ++i) {
    silent.emplace_back(server_->port());
    ASSERT_TRUE(silent.back().connected());
  }
  RawConn polite(server_->port());
  ASSERT_TRUE(polite.connected());
  ASSERT_TRUE(polite.Handshake());

  for (auto& c : silent) {
    EXPECT_TRUE(c.DrainToEof()) << "pre-handshake socket never reaped";
  }
  EXPECT_GE(server_->stats().handshake_timeouts.load(), 4u);
  // The handshaken connection outlives the handshake deadline by design.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_TRUE(polite.Ping());
}

// ===========================================================================
// Slow readers and run-queue shedding
// ===========================================================================

TEST_F(NetScaleTest, SlowReaderIsDisconnectedAtWriteBufferCap) {
  auto db = MakeDb();
  net::ServerConfig config;
  config.write_buffer_cap = 64 * 1024;
  StartServer(db.get(), config);

  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Handshake());

  // Ask for a 16 MiB echo and never read it. The kernel buffers what it
  // will; the server may buffer write_buffer_cap more — then it must cut
  // the connection instead of holding megabytes hostage for a dead reader.
  Bytes big(16u << 20, 0x5A);
  ASSERT_TRUE(conn.Send(net::EncodeFrame(net::MsgType::kPing, big)));
  auto t0 = Clock::now();
  bool cut = false;
  while (ElapsedMs(t0) < 8000.0) {
    if (server_->stats().slow_reader_disconnects.load() >= 1) {
      cut = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(cut) << "slow reader never disconnected";
  EXPECT_TRUE(WaitActive(0));
}

TEST_F(NetScaleTest, FullRunQueueShedsTypedFromTheEventLoop) {
  auto db = MakeDb();
  net::ServerConfig config;
  config.exec_threads = 1;
  config.max_exec_threads = 1;  // no elastic growth: queue pressure is real
  config.run_queue_depth = 1;
  config.overload_retry_after_ms = 7;
  StartServer(db.get(), config);

  RawConn a(server_->port()), b(server_->port()), c(server_->port());
  for (RawConn* conn : {&a, &b, &c}) {
    ASSERT_TRUE(conn->connected());
    ASSERT_TRUE(conn->Handshake());
  }

  net::MsgType type;
  Bytes payload;
  {
    // Every response now sleeps 400 ms on the (single) worker.
    fault::FaultSpec slow = fault::FaultSpec::Always(Status::OK());
    slow.arg = 400;
    fault::ScopedFault scoped("net/delay_response", slow);

    // a occupies the worker; b fills the one queue slot; c must be shed with
    // a typed kOverloaded + retry-after answered by the event loop itself —
    // no worker, no thread, no waiting.
    ASSERT_TRUE(a.Send(net::EncodeFrame(net::MsgType::kPing, Slice())));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(b.Send(net::EncodeFrame(net::MsgType::kPing, Slice())));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(c.Send(net::EncodeFrame(net::MsgType::kPing, Slice())));

    auto t0 = Clock::now();
    ASSERT_TRUE(c.ReadFrame(&type, &payload));
    double shed_ms = ElapsedMs(t0);
    ASSERT_EQ(type, net::MsgType::kError);
    Status shed;
    ASSERT_TRUE(net::DecodeStatusPayload(payload, &shed).ok());
    EXPECT_TRUE(shed.IsOverloaded()) << shed.ToString();
    EXPECT_EQ(RetryAfterMsFromMessage(shed.message()), 7u) << shed.message();
    EXPECT_LT(shed_ms, 300.0) << "shed answer waited on the busy worker";

    // a and b were admitted and must complete…
    EXPECT_TRUE(a.ReadFrame(&type, &payload) && type == net::MsgType::kPong);
    EXPECT_TRUE(b.ReadFrame(&type, &payload) && type == net::MsgType::kPong);
    EXPECT_GE(server_->stats().run_queue_sheds.load(), 1u);
  }
  // …and the shed connection was never closed: it retries and succeeds.
  EXPECT_TRUE(c.Ping());
}

}  // namespace
}  // namespace aedb
