#ifndef AEDB_TESTS_PROCESS_SUPERVISOR_H_
#define AEDB_TESTS_PROCESS_SUPERVISOR_H_

// The crash-torture supervisor: fork/execs an aedb_serverd child over a data
// directory, parses its "listening on host:port" banner through a pipe, and
// kills it with SIGKILL (or lets a --die-at fault kill it) at the harness's
// chosen moments. Header-only; used by crash_torture_test.cc.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"

namespace aedb::testing {

/// One serverd child process. Start → (Kill | WaitExit) → Start again over
/// the same data dir is the crash/restart cycle.
class ServerProcess {
 public:
  explicit ServerProcess(std::string serverd_path)
      : serverd_path_(std::move(serverd_path)) {}
  ~ServerProcess() { (void)Kill(); }

  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;

  /// Spawns `serverd extra_args...` with stdout piped to the supervisor and
  /// blocks until the listening banner is parsed (filling port()) or the
  /// child exits first. A child that dies before the banner — e.g. a
  /// --die-at recovery/replay crash during startup recovery — yields a
  /// FailedPrecondition carrying its exit status; the child is reaped.
  Status Start(const std::vector<std::string>& extra_args) {
    if (pid_ > 0) return Status::FailedPrecondition("child already running");
    int pipefd[2];
    if (pipe(pipefd) != 0) return Status::Internal("pipe failed");
    pid_t pid = fork();
    if (pid < 0) {
      close(pipefd[0]);
      close(pipefd[1]);
      return Status::Internal("fork failed");
    }
    if (pid == 0) {
      // Child: stdout -> pipe (stderr stays on the test's stderr).
      dup2(pipefd[1], STDOUT_FILENO);
      close(pipefd[0]);
      close(pipefd[1]);
      std::vector<std::string> args;
      args.push_back(serverd_path_);
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(serverd_path_.c_str(), argv.data());
      std::fprintf(stderr, "execv %s: %s\n", serverd_path_.c_str(),
                   strerror(errno));
      _exit(127);
    }
    close(pipefd[1]);
    pid_ = pid;
    out_fd_ = pipefd[0];
    Status st = WaitForBanner();
    if (!st.ok()) {
      int status = 0;
      (void)WaitExit(&status);
      return Status::FailedPrecondition(st.message() + " (child exit status " +
                                        std::to_string(status) + ")");
    }
    return Status::OK();
  }

  /// kill -9 and reap. OK (and a no-op) when no child is running.
  Status Kill() {
    if (pid_ <= 0) return Status::OK();
    kill(pid_, SIGKILL);
    int status = 0;
    return WaitExit(&status);
  }

  /// SIGTERM (graceful drain) and reap, reporting the wait status.
  Status Terminate(int* wait_status) {
    if (pid_ <= 0) return Status::FailedPrecondition("no child");
    kill(pid_, SIGTERM);
    return WaitExit(wait_status);
  }

  /// Sends SIGKILL without reaping (for the async killer thread; the main
  /// thread reaps via WaitExit once traffic errors out).
  void KillAsync() const {
    if (pid_ > 0) kill(pid_, SIGKILL);
  }

  /// Blocks until the child exits (however it died) and reaps it.
  Status WaitExit(int* wait_status) {
    if (pid_ <= 0) return Status::FailedPrecondition("no child");
    int status = 0;
    pid_t r;
    do {
      r = waitpid(pid_, &status, 0);
    } while (r < 0 && errno == EINTR);
    pid_ = -1;
    if (out_fd_ >= 0) {
      close(out_fd_);
      out_fd_ = -1;
    }
    if (wait_status != nullptr) *wait_status = status;
    return r < 0 ? Status::Internal("waitpid failed") : Status::OK();
  }

  bool running() const { return pid_ > 0; }
  uint16_t port() const { return port_; }
  pid_t pid() const { return pid_; }

 private:
  Status WaitForBanner() {
    std::string buffered;
    char chunk[256];
    for (;;) {
      // Already have a full line?
      size_t nl;
      while ((nl = buffered.find('\n')) != std::string::npos) {
        std::string line = buffered.substr(0, nl);
        buffered.erase(0, nl + 1);
        unsigned port = 0;
        if (line.find("listening on") != std::string::npos &&
            ParsePort(line, &port)) {
          port_ = static_cast<uint16_t>(port);
          return Status::OK();
        }
      }
      ssize_t n = read(out_fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        return Status::FailedPrecondition(
            "child exited before the listening banner");
      }
      buffered.append(chunk, static_cast<size_t>(n));
    }
  }

  static bool ParsePort(const std::string& line, unsigned* port) {
    // "... listening on 0.0.0.0:40123 (enclave author ...)"
    size_t colon = line.rfind(':');
    if (colon == std::string::npos) return false;
    return sscanf(line.c_str() + colon + 1, "%u", port) == 1 && *port > 0 &&
           *port <= 65535;
  }

  std::string serverd_path_;
  pid_t pid_ = -1;
  int out_fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace aedb::testing

#endif  // AEDB_TESTS_PROCESS_SUPERVISOR_H_
