#include <gtest/gtest.h>

#include "crypto/cell_codec.h"
#include "crypto/drbg.h"
#include "es/evaluator.h"
#include "es/program.h"

namespace aedb::es {
namespace {

using types::EncKind;
using types::EncryptionType;
using types::TypeId;
using types::Value;

// Minimal crypto provider for evaluator tests (stands in for the enclave's).
class TestCrypto : public CellCryptoProvider {
 public:
  TestCrypto() : cek_(crypto::SecureRandom(32)), codec_(cek_) {}

  Result<Value> DecryptDatum(const EncryptionType& enc, TypeId,
                             const Value& wire) override {
    (void)enc;
    Bytes plain;
    AEDB_ASSIGN_OR_RETURN(plain, codec_.Decrypt(wire.bin()));
    size_t off = 0;
    return Value::Decode(plain, &off);
  }
  Result<Value> EncryptDatum(const EncryptionType& enc,
                             const Value& plain) override {
    return Value::Binary(codec_.Encrypt(plain.Encode(), enc.scheme()));
  }

  Value Cell(const Value& v) {
    return Value::Binary(
        codec_.Encrypt(v.Encode(), crypto::EncryptionScheme::kRandomized));
  }

 private:
  Bytes cek_;
  crypto::CellCodec codec_;
};

EvalContext HostCtx() { return EvalContext{}; }

Result<std::vector<Value>> RunProgram(const EsProgram& p, std::vector<Value> inputs,
                               EvalContext ctx = HostCtx()) {
  EsEvaluator ev(ctx);
  return ev.Eval(p, inputs);
}

TEST(EsProgramTest, SerializeRoundTrip) {
  EsProgram p;
  p.GetData(0, TypeId::kInt32);
  p.Const(Value::Int32(5));
  p.Comp(CompareOp::kLt);
  p.SetData(0, TypeId::kBool);
  EsProgram inner;
  inner.GetData(0, TypeId::kString,
                EncryptionType::Encrypted(EncKind::kRandomized, 3, true));
  inner.GetData(1, TypeId::kString,
                EncryptionType::Encrypted(EncKind::kRandomized, 3, true));
  inner.Comp(CompareOp::kEq);
  inner.SetData(0, TypeId::kBool);
  p.TMEval(inner, 2, 1);

  Bytes ser = p.Serialize();
  auto back = EsProgram::Deserialize(ser);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Serialize(), ser);
  EXPECT_EQ(back->num_outputs(), p.num_outputs());
  EXPECT_TRUE(back->RequiresEnclave());
  EXPECT_EQ(back->ReferencedCekIds(), std::vector<uint32_t>{3});
  EXPECT_FALSE(back->ProducesCiphertext());
}

TEST(EsProgramTest, DeserializeRejectsGarbage) {
  Bytes junk = {9, 9, 9};
  EXPECT_FALSE(EsProgram::Deserialize(junk).ok());
}

TEST(EsProgramTest, ProducesCiphertextDetection) {
  EsProgram p;
  p.GetData(0, TypeId::kInt32);
  p.SetData(0, TypeId::kInt32,
            EncryptionType::Encrypted(EncKind::kRandomized, 1, true));
  EXPECT_TRUE(p.ProducesCiphertext());
}

TEST(EsEvaluatorTest, ComparisonOps) {
  for (auto [op, expected] : std::initializer_list<std::pair<CompareOp, bool>>{
           {CompareOp::kEq, false},
           {CompareOp::kNe, true},
           {CompareOp::kLt, true},
           {CompareOp::kLe, true},
           {CompareOp::kGt, false},
           {CompareOp::kGe, false}}) {
    EsProgram p;
    p.GetData(0, TypeId::kInt32);
    p.GetData(1, TypeId::kInt32);
    p.Comp(op);
    p.SetData(0, TypeId::kBool);
    auto r = RunProgram(p, {Value::Int32(1), Value::Int32(2)});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)[0].bool_v(), expected) << CompareOpName(op);
  }
}

TEST(EsEvaluatorTest, ArithmeticAndPrecedenceShape) {
  // (a + b) * c - a / b
  EsProgram p;
  p.GetData(0, TypeId::kInt64);
  p.GetData(1, TypeId::kInt64);
  p.Arith(OpCode::kAdd);
  p.GetData(2, TypeId::kInt64);
  p.Arith(OpCode::kMul);
  p.GetData(0, TypeId::kInt64);
  p.GetData(1, TypeId::kInt64);
  p.Arith(OpCode::kDiv);
  p.Arith(OpCode::kSub);
  p.SetData(0, TypeId::kInt64);
  auto r = RunProgram(p, {Value::Int64(10), Value::Int64(3), Value::Int64(2)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].i64(), (10 + 3) * 2 - 10 / 3);
}

TEST(EsEvaluatorTest, DoubleArithmetic) {
  EsProgram p;
  p.GetData(0, TypeId::kDouble);
  p.GetData(1, TypeId::kInt32);
  p.Arith(OpCode::kMul);
  p.SetData(0, TypeId::kDouble);
  auto r = RunProgram(p, {Value::Double(1.5), Value::Int32(4)});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].dbl(), 6.0);
}

TEST(EsEvaluatorTest, DivisionByZeroFails) {
  EsProgram p;
  p.Const(Value::Int32(1));
  p.Const(Value::Int32(0));
  p.Arith(OpCode::kDiv);
  p.SetData(0, TypeId::kInt64);
  EXPECT_FALSE(RunProgram(p, {}).ok());
}

TEST(EsEvaluatorTest, ThreeValuedLogic) {
  // NULL AND FALSE = FALSE; NULL AND TRUE = NULL; NULL OR TRUE = TRUE.
  auto logic = [](OpCode op, Value a, Value b) {
    EsProgram p;
    p.GetData(0, TypeId::kBool);
    p.GetData(1, TypeId::kBool);
    p.Logic(op);
    p.SetData(0, TypeId::kBool);
    return RunProgram(p, {a, b});
  };
  Value null_bool = Value::Null(TypeId::kBool);
  auto r1 = logic(OpCode::kAnd, null_bool, Value::Bool(false));
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE((*r1)[0].is_null());
  EXPECT_FALSE((*r1)[0].bool_v());
  auto r2 = logic(OpCode::kAnd, null_bool, Value::Bool(true));
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE((*r2)[0].is_null());
  auto r3 = logic(OpCode::kOr, null_bool, Value::Bool(true));
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE((*r3)[0].bool_v());
  auto r4 = logic(OpCode::kOr, null_bool, Value::Bool(false));
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE((*r4)[0].is_null());
}

TEST(EsEvaluatorTest, ComparisonWithNullIsNull) {
  EsProgram p;
  p.GetData(0, TypeId::kInt32);
  p.Const(Value::Int32(5));
  p.Comp(CompareOp::kEq);
  p.SetData(0, TypeId::kBool);
  auto r = RunProgram(p, {Value::Null(TypeId::kInt32)});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)[0].is_null());
}

TEST(EsEvaluatorTest, NotAndIsNull) {
  EsProgram p;
  p.GetData(0, TypeId::kBool);
  p.Logic(OpCode::kNot);
  p.SetData(0, TypeId::kBool);
  p.GetData(1, TypeId::kInt32);
  p.IsNull();
  p.SetData(1, TypeId::kBool);
  auto r = RunProgram(p, {Value::Bool(true), Value::Null(TypeId::kInt32)});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE((*r)[0].bool_v());
  EXPECT_TRUE((*r)[1].bool_v());
}

TEST(EsEvaluatorTest, LikeMatching) {
  EsProgram p;
  p.GetData(0, TypeId::kString);
  p.GetData(1, TypeId::kString);
  p.Like();
  p.SetData(0, TypeId::kBool);
  auto r = RunProgram(p, {Value::String("BARNES"), Value::String("BAR%")});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)[0].bool_v());
}

TEST(EsEvaluatorTest, HostRefusesEncryptedAnnotations) {
  // The host evaluator has no crypto provider: touching an encrypted
  // annotation must fail — by construction the host never sees plaintext.
  EsProgram p;
  p.GetData(0, TypeId::kInt32,
            EncryptionType::Encrypted(EncKind::kRandomized, 1, true));
  p.SetData(0, TypeId::kInt32);
  auto r = RunProgram(p, {Value::Binary({1, 2, 3})});
  EXPECT_TRUE(r.status().IsSecurityError());
}

TEST(EsEvaluatorTest, EnclaveDecryptCompare) {
  TestCrypto crypto;
  EvalContext ctx;
  ctx.crypto = &crypto;
  EsProgram p;
  auto enc = EncryptionType::Encrypted(EncKind::kRandomized, 1, true);
  p.GetData(0, TypeId::kString, enc);
  p.GetData(1, TypeId::kString, enc);
  p.Comp(CompareOp::kEq);
  p.SetData(0, TypeId::kBool);
  auto r = RunProgram(p, {crypto.Cell(Value::String("SMITH")),
                   crypto.Cell(Value::String("SMITH"))},
               ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE((*r)[0].bool_v());
}

TEST(EsEvaluatorTest, TaintBlocksCiphertextVsPlaintextComparison) {
  // An adversarial program comparing a decrypted column against a chosen
  // plaintext constant must be rejected (paper §4.4.1 security checks).
  TestCrypto crypto;
  EvalContext ctx;
  ctx.crypto = &crypto;
  EsProgram p;
  p.GetData(0, TypeId::kString,
            EncryptionType::Encrypted(EncKind::kRandomized, 1, true));
  p.Const(Value::String("guess"));
  p.Comp(CompareOp::kEq);
  p.SetData(0, TypeId::kBool);
  auto r = RunProgram(p, {crypto.Cell(Value::String("secret"))}, ctx);
  EXPECT_TRUE(r.status().IsSecurityError()) << r.status().ToString();
}

TEST(EsEvaluatorTest, TaintBlocksPlaintextExfiltration) {
  // Decrypt-then-output-as-plaintext must be rejected.
  TestCrypto crypto;
  EvalContext ctx;
  ctx.crypto = &crypto;
  EsProgram p;
  p.GetData(0, TypeId::kString,
            EncryptionType::Encrypted(EncKind::kRandomized, 1, true));
  p.SetData(0, TypeId::kString);  // plaintext annotation!
  auto r = RunProgram(p, {crypto.Cell(Value::String("secret"))}, ctx);
  EXPECT_TRUE(r.status().IsSecurityError());
}

TEST(EsEvaluatorTest, EncryptionRequiresAuthorization) {
  TestCrypto crypto;
  EvalContext ctx;
  ctx.crypto = &crypto;
  ctx.encryption_authorized = false;
  EsProgram p;
  p.GetData(0, TypeId::kInt32);
  p.SetData(0, TypeId::kInt32,
            EncryptionType::Encrypted(EncKind::kRandomized, 1, true));
  auto r = RunProgram(p, {Value::Int32(5)}, ctx);
  EXPECT_TRUE(r.status().IsPermissionDenied());

  ctx.encryption_authorized = true;
  auto r2 = RunProgram(p, {Value::Int32(5)}, ctx);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)[0].type(), TypeId::kBinary);  // ciphertext out
}

TEST(EsEvaluatorTest, StackUnderflowDetected) {
  EsProgram p;
  p.Comp(CompareOp::kEq);
  p.SetData(0, TypeId::kBool);
  EXPECT_FALSE(RunProgram(p, {}).ok());
}

TEST(EsEvaluatorTest, UnwrittenOutputDetected) {
  EsProgram p;
  p.set_num_outputs(2);
  p.Const(Value::Int32(1));
  p.SetData(0, TypeId::kInt32);
  EXPECT_FALSE(RunProgram(p, {}).ok());
}

TEST(EsEvaluatorTest, InputIndexOutOfRange) {
  EsProgram p;
  p.GetData(3, TypeId::kInt32);
  p.SetData(0, TypeId::kInt32);
  EXPECT_FALSE(RunProgram(p, {Value::Int32(1)}).ok());
}

TEST(EsEvaluatorTest, GetDataTypeMismatch) {
  EsProgram p;
  p.GetData(0, TypeId::kString);
  p.SetData(0, TypeId::kString);
  EXPECT_FALSE(RunProgram(p, {Value::Int32(1)}).ok());
}

// TMEval host→"enclave" routing via a test invoker.
class TestInvoker : public EnclaveInvoker {
 public:
  explicit TestInvoker(TestCrypto* crypto) : crypto_(crypto) {}
  Result<std::vector<Value>> EvalInEnclave(Slice program_bytes,
                                           const std::vector<Value>& inputs,
                                           uint32_t) override {
    ++calls;
    EsProgram p;
    AEDB_ASSIGN_OR_RETURN(p, EsProgram::Deserialize(program_bytes));
    EvalContext ctx;
    ctx.crypto = crypto_;
    EsEvaluator ev(ctx);
    return ev.Eval(p, inputs);
  }
  TestCrypto* crypto_;
  int calls = 0;
};

TEST(EsEvaluatorTest, TMEvalRoutesToEnclave) {
  TestCrypto crypto;
  TestInvoker invoker(&crypto);
  EvalContext host_ctx;
  host_ctx.enclave = &invoker;

  auto enc = EncryptionType::Encrypted(EncKind::kRandomized, 1, true);
  EsProgram inner;
  inner.GetData(0, TypeId::kInt64, enc);
  inner.GetData(1, TypeId::kInt64, enc);
  inner.Comp(CompareOp::kLt);
  inner.SetData(0, TypeId::kBool);

  EsProgram host;
  host.GetData(0, TypeId::kBinary);
  host.GetData(1, TypeId::kBinary);
  host.TMEval(inner, 2, 1);
  host.SetData(0, TypeId::kBool);

  auto r = RunProgram(host, {crypto.Cell(Value::Int64(3)), crypto.Cell(Value::Int64(9))},
               host_ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE((*r)[0].bool_v());
  EXPECT_EQ(invoker.calls, 1);
}

TEST(EsEvaluatorTest, TMEvalWithoutEnclaveFails) {
  EsProgram inner;
  inner.Const(Value::Int32(1));
  inner.SetData(0, TypeId::kInt32);
  EsProgram host;
  host.TMEval(inner, 0, 1);
  host.SetData(0, TypeId::kInt32);
  auto r = RunProgram(host, {});
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// ---- vectorized EvalBatch ----

TEST(EsEvaluatorTest, EvalBatchMatchesRowLoop) {
  // (a + b) * 2 < 20, mixed arithmetic and comparison over plaintext rows.
  EsProgram p;
  p.GetData(0, TypeId::kInt64);
  p.GetData(1, TypeId::kInt64);
  p.Arith(OpCode::kAdd);
  p.Const(Value::Int64(2));
  p.Arith(OpCode::kMul);
  p.Const(Value::Int64(20));
  p.Comp(CompareOp::kLt);
  p.SetData(0, TypeId::kBool);

  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 7; ++i) {
    rows.push_back({Value::Int64(i), Value::Int64(i * 3)});
  }
  EsEvaluator ev(HostCtx());
  auto batch = ev.EvalBatch(p, rows);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    auto scalar = RunProgram(p, rows[i]);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ((*batch)[i][0].bool_v(), (*scalar)[0].bool_v()) << "row " << i;
  }
}

TEST(EsEvaluatorTest, EvalBatchSizeOneIsRowAtATime) {
  EsProgram p;
  p.GetData(0, TypeId::kInt32);
  p.Const(Value::Int32(5));
  p.Comp(CompareOp::kGe);
  p.SetData(0, TypeId::kBool);
  EsEvaluator ev(HostCtx());
  auto one = ev.EvalBatch(p, {{Value::Int32(7)}});
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->size(), 1u);
  EXPECT_TRUE((*one)[0][0].bool_v());
  auto empty = ev.EvalBatch(p, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(EsEvaluatorTest, EvalBatchReportsLowestFailingRowError) {
  // Division by zero is data-dependent: the row loop would have surfaced the
  // first failing row's error, so the batch must report exactly that.
  EsProgram p;
  p.GetData(0, TypeId::kInt64);
  p.GetData(1, TypeId::kInt64);
  p.Arith(OpCode::kDiv);
  p.SetData(0, TypeId::kInt64);
  std::vector<std::vector<Value>> rows = {
      {Value::Int64(10), Value::Int64(2)},
      {Value::Int64(10), Value::Int64(0)},  // fails
      {Value::Int64(9), Value::Int64(3)},
  };
  EsEvaluator ev(HostCtx());
  auto batch = ev.EvalBatch(p, rows);
  auto scalar = RunProgram(p, rows[1]);
  ASSERT_FALSE(batch.ok());
  ASSERT_FALSE(scalar.ok());
  EXPECT_EQ(batch.status().code(), scalar.status().code());
}

TEST(EsEvaluatorTest, EvalBatchEnforcesTaint) {
  // The §4.4.1 security check must hold for every row of a batch: comparing
  // a decrypted column against attacker-chosen plaintext is rejected.
  TestCrypto crypto;
  EvalContext ctx;
  ctx.crypto = &crypto;
  EsProgram p;
  p.GetData(0, TypeId::kString,
            EncryptionType::Encrypted(EncKind::kRandomized, 1, true));
  p.Const(Value::String("guess"));
  p.Comp(CompareOp::kEq);
  p.SetData(0, TypeId::kBool);
  std::vector<std::vector<Value>> rows = {
      {crypto.Cell(Value::String("a"))},
      {crypto.Cell(Value::String("b"))},
  };
  EsEvaluator ev(ctx);
  auto r = ev.EvalBatch(p, rows);
  EXPECT_TRUE(r.status().IsSecurityError()) << r.status().ToString();
}

// Counts batched vs scalar crossings so the "one transition per morsel"
// contract is testable at the es layer.
class BatchCountingInvoker : public TestInvoker {
 public:
  using TestInvoker::TestInvoker;
  Result<std::vector<std::vector<Value>>> EvalInEnclaveBatch(
      Slice program_bytes, const std::vector<std::vector<Value>>& batch_inputs,
      uint32_t n_outputs) override {
    ++batch_calls;
    last_batch_size = batch_inputs.size();
    std::vector<std::vector<Value>> out;
    for (const auto& inputs : batch_inputs) {
      std::vector<Value> row;
      AEDB_ASSIGN_OR_RETURN(row,
                            EvalInEnclave(program_bytes, inputs, n_outputs));
      out.push_back(std::move(row));
    }
    calls = 0;  // scalar calls made on the invoker's own behalf don't count
    return out;
  }
  int batch_calls = 0;
  size_t last_batch_size = 0;
};

TEST(EsEvaluatorTest, EvalBatchCrossesEnclaveOncePerMorsel) {
  TestCrypto crypto;
  BatchCountingInvoker invoker(&crypto);
  EvalContext host_ctx;
  host_ctx.enclave = &invoker;

  auto enc = EncryptionType::Encrypted(EncKind::kRandomized, 1, true);
  EsProgram inner;
  inner.GetData(0, TypeId::kInt64, enc);
  inner.GetData(1, TypeId::kInt64, enc);
  inner.Comp(CompareOp::kLt);
  inner.SetData(0, TypeId::kBool);
  EsProgram host;
  host.GetData(0, TypeId::kBinary);
  host.GetData(1, TypeId::kBinary);
  host.TMEval(inner, 2, 1);
  host.SetData(0, TypeId::kBool);

  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 9; ++i) {
    rows.push_back({crypto.Cell(Value::Int64(i)), crypto.Cell(Value::Int64(5))});
  }
  EsEvaluator ev(host_ctx);
  auto r = ev.EvalBatch(host, rows);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(invoker.batch_calls, 1);  // nine rows, one crossing
  EXPECT_EQ(invoker.last_batch_size, 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ((*r)[i][0].bool_v(), i < 5) << "row " << i;
  }
}

}  // namespace
}  // namespace aedb::es
