#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fault/fault.h"
#include "storage/btree.h"
#include "storage/engine.h"
#include "storage/torture.h"

namespace aedb::storage {
namespace {

Bytes B(std::string_view s) { return Slice(s).ToBytes(); }

constexpr uint32_t kTable = 1;
constexpr uint32_t kIndex = 2;

std::unique_ptr<StorageEngine> MakeEngine() {
  auto engine = std::make_unique<StorageEngine>();
  EXPECT_TRUE(engine->CreateTable(kTable).ok());
  EXPECT_TRUE(engine
                  ->CreateIndex(kIndex, kTable,
                                std::make_unique<BinaryComparator>(),
                                /*unique=*/false)
                  .ok());
  return engine;
}

class TortureTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Global().Reset(); }
  void TearDown() override { fault::FaultRegistry::Global().Reset(); }
};

/// The crash-point matrix: a workload mixing committed, aborted and
/// uncommitted transactions over heap + index, cut at EVERY record boundary
/// and every mid-frame torn point. Recovery must land on exactly the
/// committed prefix at each cut.
TEST_F(TortureTest, CommittedPrefixSurvivesEveryCrashPoint) {
  auto workload = [](StorageEngine* engine) -> Status {
    for (int round = 0; round < 6; ++round) {
      uint64_t txn = engine->Begin();
      for (int i = 0; i < 2; ++i) {
        std::string row =
            "row-" + std::to_string(round) + "-" + std::to_string(i);
        Rid rid;
        AEDB_ASSIGN_OR_RETURN(rid, engine->HeapInsert(txn, kTable, B(row)));
        AEDB_RETURN_IF_ERROR(engine->IndexInsert(
            txn, kIndex, B("k" + std::to_string(round)), rid));
      }
      if (round % 3 == 2) {
        AEDB_RETURN_IF_ERROR(engine->Abort(txn));  // loser: must vanish
      } else {
        AEDB_RETURN_IF_ERROR(engine->Commit(txn));
      }
    }
    // One transaction left in flight at "crash time": always a loser.
    uint64_t dangling = engine->Begin();
    Rid rid;
    AEDB_ASSIGN_OR_RETURN(rid,
                          engine->HeapInsert(dangling, kTable, B("in-flight")));
    AEDB_RETURN_IF_ERROR(engine->IndexInsert(dangling, kIndex, B("kz"), rid));
    return Status::OK();
  };

  auto report = RunWalCrashTorture(MakeEngine, workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  // 6 rounds * (begin + 2*(heap+index) + commit/abort) + dangling txn's 3
  // records: plenty of boundary cuts, each also torn at its midpoint.
  EXPECT_GE(report->crash_points, 30u);
  EXPECT_GE(report->torn_points, 25u);
}

/// Deletes and re-inserts under the same keys: recovery must replay
/// committed deletes (not resurrect ghosts) and keep index multiset counts
/// exact at every cut.
TEST_F(TortureTest, DeleteHeavyWorkloadRecoversExactly) {
  auto workload = [](StorageEngine* engine) -> Status {
    // Seed rows.
    uint64_t seed_txn = engine->Begin();
    std::vector<Rid> rids;
    for (int i = 0; i < 5; ++i) {
      Rid rid;
      AEDB_ASSIGN_OR_RETURN(
          rid, engine->HeapInsert(seed_txn, kTable, B("seed" + std::to_string(i))));
      AEDB_RETURN_IF_ERROR(engine->IndexInsert(seed_txn, kIndex, B("dup"), rid));
      rids.push_back(rid);
    }
    AEDB_RETURN_IF_ERROR(engine->Commit(seed_txn));

    // Committed deletes of some seed rows.
    uint64_t del_txn = engine->Begin();
    for (int i = 0; i < 3; ++i) {
      AEDB_RETURN_IF_ERROR(engine->IndexDelete(del_txn, kIndex, B("dup"),
                                               rids[static_cast<size_t>(i)]));
      AEDB_RETURN_IF_ERROR(
          engine->HeapDelete(del_txn, kTable, rids[static_cast<size_t>(i)]));
    }
    AEDB_RETURN_IF_ERROR(engine->Commit(del_txn));

    // An aborted delete: the row must remain after recovery.
    uint64_t bad_txn = engine->Begin();
    AEDB_RETURN_IF_ERROR(engine->IndexDelete(bad_txn, kIndex, B("dup"), rids[4]));
    AEDB_RETURN_IF_ERROR(engine->HeapDelete(bad_txn, kTable, rids[4]));
    AEDB_RETURN_IF_ERROR(engine->Abort(bad_txn));

    // Fresh inserts after the churn.
    uint64_t add_txn = engine->Begin();
    Rid rid;
    AEDB_ASSIGN_OR_RETURN(rid, engine->HeapInsert(add_txn, kTable, B("fresh")));
    AEDB_RETURN_IF_ERROR(engine->IndexInsert(add_txn, kIndex, B("dup"), rid));
    return engine->Commit(add_txn);
  };

  auto report = RunWalCrashTorture(MakeEngine, workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_GE(report->crash_points, 20u);
}

/// The boundary-only variant still passes with torn midpoints disabled
/// (exercises the option), and counts zero torn points.
TEST_F(TortureTest, BoundaryOnlyMode) {
  auto workload = [](StorageEngine* engine) -> Status {
    uint64_t txn = engine->Begin();
    Rid rid;
    AEDB_ASSIGN_OR_RETURN(rid, engine->HeapInsert(txn, kTable, B("one")));
    AEDB_RETURN_IF_ERROR(engine->IndexInsert(txn, kIndex, B("k"), rid));
    return engine->Commit(txn);
  };
  TortureOptions options;
  options.torn_midpoints = false;
  auto report = RunWalCrashTorture(MakeEngine, workload, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->torn_points, 0u);
  EXPECT_GE(report->crash_points, 4u);
}

/// Crash DURING a log write: the wal/torn_append fault leaves a half-written
/// frame at the tail of the image; recovery over that exact image must drop
/// the torn record and keep everything before it.
TEST_F(TortureTest, TornAppendImageRecoversCommittedPrefix) {
  auto engine = MakeEngine();
  uint64_t committed_txn = engine->Begin();
  Rid rid = *engine->HeapInsert(committed_txn, kTable, B("durable"));
  ASSERT_TRUE(engine->IndexInsert(committed_txn, kIndex, B("k"), rid).ok());
  ASSERT_TRUE(engine->Commit(committed_txn).ok());

  // The crash: a heap insert's log write tears mid-frame.
  uint64_t torn_txn = engine->Begin();
  fault::FaultRegistry::Global().Arm(
      "wal/torn_append",
      fault::FaultSpec::OneShot(Status::Internal("power loss")));
  EXPECT_FALSE(engine->HeapInsert(torn_txn, kTable, B("torn-row")).ok());
  fault::FaultRegistry::Global().DisarmAll();

  // Recover a fresh engine from the torn image.
  auto engine2 = MakeEngine();
  auto load = engine2->wal().LoadImage(engine->wal().RawBytes());
  EXPECT_TRUE(load.torn_tail);
  auto result = engine2->Recover();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(engine2->table(kTable)->live_rows(), 1u);
  EXPECT_EQ(*engine2->table(kTable)->Read(rid), B("durable"));
  auto rids = engine2->index_tree(kIndex)->SeekEqual(B("k"));
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 1u);
}

}  // namespace
}  // namespace aedb::storage
