#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/bignum.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"

namespace aedb::crypto {
namespace {

HmacDrbg TestDrbg(uint8_t tag = 0) {
  Bytes seed(32, 0x5a);
  seed[0] = tag;
  return HmacDrbg(seed, Slice(std::string_view("bignum-test")));
}

TEST(BigNumTest, ZeroProperties) {
  BigNum z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToHex(), "0");
  EXPECT_TRUE(z == BigNum(0));
}

TEST(BigNumTest, BytesRoundTrip) {
  Bytes raw = {0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef, 0x11};
  BigNum n = BigNum::FromBytesBE(raw);
  EXPECT_EQ(n.ToBytesBE(), raw);
  EXPECT_EQ(n.ToBytesBE(12).size(), 12u);
  EXPECT_EQ(Slice(n.ToBytesBE(12)).subslice(3, 9).ToBytes(), raw);
}

TEST(BigNumTest, HexParse) {
  auto n = BigNum::FromHex("0xff00");
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(*n == BigNum(0xff00));
  auto odd = BigNum::FromHex("f");
  ASSERT_TRUE(odd.ok());
  EXPECT_TRUE(*odd == BigNum(15));
}

TEST(BigNumTest, SmallArithmetic) {
  BigNum a(1000), b(37);
  EXPECT_TRUE(a + b == BigNum(1037));
  EXPECT_TRUE(a - b == BigNum(963));
  EXPECT_TRUE(a * b == BigNum(37000));
  EXPECT_TRUE(a / b == BigNum(27));
  EXPECT_TRUE(a % b == BigNum(1));
}

TEST(BigNumTest, AdditionCarriesAcrossLimbs) {
  BigNum max64(~0ULL);
  BigNum sum = max64 + BigNum(1);
  EXPECT_EQ(sum.BitLength(), 65u);
  EXPECT_TRUE(sum - BigNum(1) == max64);
}

TEST(BigNumTest, ShiftRoundTrip) {
  auto n = BigNum::FromHex("123456789abcdef0fedcba9876543210").value();
  for (size_t s : {1u, 7u, 64u, 65u, 130u}) {
    EXPECT_TRUE(((n << s) >> s) == n) << s;
  }
}

TEST(BigNumTest, DivisionByZeroFails) {
  BigNum q, r;
  EXPECT_FALSE(BigNum::DivMod(BigNum(5), BigNum(), &q, &r).ok());
}

TEST(BigNumTest, DivModInvariantRandom) {
  HmacDrbg drbg = TestDrbg();
  for (int i = 0; i < 200; ++i) {
    size_t ubits = 1 + static_cast<size_t>(drbg.Generate(1)[0]) * 3;
    size_t vbits = 1 + static_cast<size_t>(drbg.Generate(1)[0]);
    BigNum u = BigNum::RandomBits(ubits, &drbg);
    BigNum v = BigNum::RandomBits(vbits, &drbg);
    BigNum q, r;
    ASSERT_TRUE(BigNum::DivMod(u, v, &q, &r).ok());
    EXPECT_TRUE(q * v + r == u);
    EXPECT_TRUE(r < v);
  }
}

TEST(BigNumTest, KnuthAddBackCase) {
  // Dividend/divisor crafted so the initial qhat estimate overshoots
  // (top limbs equal), exercising the add-back path.
  BigNum u = BigNum::FromHex("80000000000000000000000000000000"
                             "00000000000000000000000000000000").value();
  BigNum v = BigNum::FromHex("80000000000000000000000000000001").value();
  BigNum q, r;
  ASSERT_TRUE(BigNum::DivMod(u, v, &q, &r).ok());
  EXPECT_TRUE(q * v + r == u);
  EXPECT_TRUE(r < v);
}

TEST(BigNumTest, ModExpMatchesSmallMath) {
  // 7^13 mod 41 = 7^13 = ... verify against iterative u64 computation.
  uint64_t expected = 1;
  for (int i = 0; i < 13; ++i) expected = expected * 7 % 41;
  EXPECT_TRUE(BigNum::ModExp(BigNum(7), BigNum(13), BigNum(41)) ==
              BigNum(expected));
}

TEST(BigNumTest, ModExpEdgeCases) {
  EXPECT_TRUE(BigNum::ModExp(BigNum(5), BigNum(0), BigNum(7)) == BigNum(1));
  EXPECT_TRUE(BigNum::ModExp(BigNum(0), BigNum(5), BigNum(7)) == BigNum(0));
  EXPECT_TRUE(BigNum::ModExp(BigNum(5), BigNum(3), BigNum(1)) == BigNum(0));
  // Even modulus path.
  EXPECT_TRUE(BigNum::ModExp(BigNum(3), BigNum(4), BigNum(100)) == BigNum(81 % 100));
}

TEST(BigNumTest, FermatLittleTheorem) {
  HmacDrbg drbg = TestDrbg(1);
  // p = 2^61 - 1 (Mersenne prime).
  BigNum p((1ULL << 61) - 1);
  for (int i = 0; i < 10; ++i) {
    BigNum a = BigNum(2) + BigNum::RandomBelow(p - BigNum(3), &drbg);
    EXPECT_TRUE(BigNum::ModExp(a, p - BigNum(1), p) == BigNum(1));
  }
}

TEST(BigNumTest, MontgomeryMatchesDivideReduce) {
  HmacDrbg drbg = TestDrbg(2);
  for (int i = 0; i < 20; ++i) {
    BigNum m = BigNum::RandomBits(192, &drbg);
    if (!m.IsOdd()) m = m + BigNum(1);
    MontgomeryContext ctx(m);
    BigNum a = BigNum::RandomBelow(m, &drbg);
    BigNum b = BigNum::RandomBelow(m, &drbg);
    BigNum mont = ctx.FromMont(ctx.MulMont(ctx.ToMont(a), ctx.ToMont(b)));
    EXPECT_TRUE(mont == (a * b) % m);
  }
}

TEST(BigNumTest, ModInverseProperty) {
  HmacDrbg drbg = TestDrbg(3);
  BigNum m = BigNum((1ULL << 61) - 1);  // prime modulus: everything invertible
  for (int i = 0; i < 20; ++i) {
    BigNum a = BigNum(1) + BigNum::RandomBelow(m - BigNum(1), &drbg);
    auto inv = BigNum::ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    EXPECT_TRUE((a * *inv) % m == BigNum(1));
  }
}

TEST(BigNumTest, ModInverseFailsWhenNotCoprime) {
  EXPECT_FALSE(BigNum::ModInverse(BigNum(6), BigNum(9)).ok());
}

TEST(BigNumTest, Gcd) {
  EXPECT_TRUE(BigNum::Gcd(BigNum(48), BigNum(18)) == BigNum(6));
  EXPECT_TRUE(BigNum::Gcd(BigNum(17), BigNum(5)) == BigNum(1));
}

TEST(BigNumTest, PrimalityKnownValues) {
  HmacDrbg drbg = TestDrbg(4);
  EXPECT_TRUE(BigNum::IsProbablePrime(BigNum(2), 10, &drbg));
  EXPECT_TRUE(BigNum::IsProbablePrime(BigNum((1ULL << 61) - 1), 10, &drbg));
  EXPECT_FALSE(BigNum::IsProbablePrime(BigNum(1), 10, &drbg));
  EXPECT_FALSE(BigNum::IsProbablePrime(BigNum(561), 10, &drbg));   // Carmichael
  EXPECT_FALSE(BigNum::IsProbablePrime(BigNum(41041), 10, &drbg)); // Carmichael
  EXPECT_TRUE(BigNum::IsProbablePrime(BigNum(104729), 10, &drbg)); // 10000th prime
}

TEST(BigNumTest, GeneratePrimeHasRequestedSize) {
  HmacDrbg drbg = TestDrbg(5);
  BigNum p = BigNum::GeneratePrime(128, &drbg);
  EXPECT_EQ(p.BitLength(), 128u);
  EXPECT_TRUE(p.IsOdd());
}

TEST(BigNumTest, RandomBelowIsBelow) {
  HmacDrbg drbg = TestDrbg(6);
  BigNum bound = BigNum::RandomBits(100, &drbg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(BigNum::RandomBelow(bound, &drbg) < bound);
  }
}

// --- RSA ---

class RsaTest : public ::testing::Test {
 protected:
  static RsaPrivateKey& Key() {
    static HmacDrbg drbg = TestDrbg(7);
    // 1024-bit: the smallest size whose OAEP capacity (62 bytes) fits a
    // 32-byte CEK, and fast enough for unit tests.
    static RsaPrivateKey key = GenerateRsaKey(1024, &drbg);
    return key;
  }
};

TEST_F(RsaTest, OaepRoundTrip) {
  HmacDrbg drbg = TestDrbg(8);
  Bytes msg = drbg.Generate(32);
  auto ct = OaepEncrypt(Key().pub, msg, &drbg);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->size(), Key().pub.ModulusSize());
  auto back = OaepDecrypt(Key(), *ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, msg);
}

TEST_F(RsaTest, OaepIsRandomized) {
  HmacDrbg drbg = TestDrbg(9);
  Bytes msg = drbg.Generate(16);
  auto c1 = OaepEncrypt(Key().pub, msg, &drbg);
  auto c2 = OaepEncrypt(Key().pub, msg, &drbg);
  EXPECT_NE(*c1, *c2);
}

TEST_F(RsaTest, OaepRejectsTampering) {
  HmacDrbg drbg = TestDrbg(10);
  Bytes msg = drbg.Generate(16);
  auto ct = OaepEncrypt(Key().pub, msg, &drbg);
  ASSERT_TRUE(ct.ok());
  Bytes tampered = *ct;
  tampered[tampered.size() / 2] ^= 1;
  EXPECT_FALSE(OaepDecrypt(Key(), tampered).ok());
}

TEST_F(RsaTest, OaepRejectsOverlongMessage) {
  HmacDrbg drbg = TestDrbg(11);
  Bytes msg(Key().pub.ModulusSize(), 0x11);
  EXPECT_FALSE(OaepEncrypt(Key().pub, msg, &drbg).ok());
}

TEST_F(RsaTest, SignVerify) {
  Bytes msg = Slice(std::string_view("CMK metadata to protect")).ToBytes();
  Bytes sig = Pkcs1Sign(Key(), msg);
  EXPECT_TRUE(Pkcs1Verify(Key().pub, msg, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongMessage) {
  Bytes sig = Pkcs1Sign(Key(), Slice(std::string_view("a")));
  EXPECT_FALSE(Pkcs1Verify(Key().pub, Slice(std::string_view("b")), sig).ok());
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  Bytes msg = Slice(std::string_view("msg")).ToBytes();
  Bytes sig = Pkcs1Sign(Key(), msg);
  sig[0] ^= 1;
  EXPECT_FALSE(Pkcs1Verify(Key().pub, msg, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
  HmacDrbg drbg = TestDrbg(12);
  RsaPrivateKey other = GenerateRsaKey(1024, &drbg);
  Bytes msg = Slice(std::string_view("msg")).ToBytes();
  Bytes sig = Pkcs1Sign(Key(), msg);
  EXPECT_FALSE(Pkcs1Verify(other.pub, msg, sig).ok());
}

TEST_F(RsaTest, PublicKeySerializationRoundTrip) {
  Bytes ser = Key().pub.Serialize();
  auto back = RsaPublicKey::Deserialize(ser);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->n == Key().pub.n);
  EXPECT_TRUE(back->e == Key().pub.e);
}

// --- Diffie-Hellman ---

TEST(DhTest, SharedSecretAgrees) {
  HmacDrbg drbg = TestDrbg(13);
  DhKeyPair alice = GenerateDhKeyPair(&drbg);
  DhKeyPair bob = GenerateDhKeyPair(&drbg);
  auto s1 = DhComputeSharedSecret(alice.private_key, DhPublicKeyBytes(bob));
  auto s2 = DhComputeSharedSecret(bob.private_key, DhPublicKeyBytes(alice));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
  EXPECT_EQ(s1->size(), 32u);
}

TEST(DhTest, DistinctPairsDisagree) {
  HmacDrbg drbg = TestDrbg(14);
  DhKeyPair a = GenerateDhKeyPair(&drbg);
  DhKeyPair b = GenerateDhKeyPair(&drbg);
  DhKeyPair c = GenerateDhKeyPair(&drbg);
  auto ab = DhComputeSharedSecret(a.private_key, DhPublicKeyBytes(b));
  auto ac = DhComputeSharedSecret(a.private_key, DhPublicKeyBytes(c));
  EXPECT_NE(*ab, *ac);
}

TEST(DhTest, RejectsDegenerateKeys) {
  HmacDrbg drbg = TestDrbg(15);
  DhKeyPair a = GenerateDhKeyPair(&drbg);
  EXPECT_FALSE(DhComputeSharedSecret(a.private_key, BigNum(0).ToBytesBE(256)).ok());
  EXPECT_FALSE(DhComputeSharedSecret(a.private_key, BigNum(1).ToBytesBE(256)).ok());
  EXPECT_FALSE(
      DhComputeSharedSecret(a.private_key, DhGroupPrime().ToBytesBE(256)).ok());
  EXPECT_FALSE(DhComputeSharedSecret(
                   a.private_key, (DhGroupPrime() - BigNum(1)).ToBytesBE(256))
                   .ok());
}

}  // namespace
}  // namespace aedb::crypto
