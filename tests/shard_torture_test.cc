// Cross-shard atomicity torture (ISSUE 10 tentpole proof).
//
// Part 1 (always runs, tier-1): the in-process 2PC fault matrix. Every
// `2pc/*` fault point fires against a live 2-shard ShardedDatabase and the
// harness proves the cross-shard transaction is all-or-nothing: an abort
// before the commit decision leaves NEITHER shard changed, a coordinator
// crash after the durable decision leaves the transaction in-doubt and
// recovery commits it on BOTH shards — including across single-shard
// crash/restart cycles.
//
// Part 2 (ctest label shard_torture, off tier-1): kill -9 against a real
// 2-shard aedb_serverd. --die-at arms a process-fatal _Exit(137) at each 2PC
// boundary; after every crash the server restarts over the same data dirs
// and the client-side invariant is checked: the per-shard halves of every
// cross-shard ledger transaction are identical sets (all-or-nothing), every
// acknowledged transaction survived (exact acked prefix), and nothing that
// was never issued appears. Self-skips unless AEDB_RUN_SHARD_TORTURE=1
// (the scripts/verify.sh --shard-torture lane sets it).

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "fault/fault.h"
#include "net/socket_transport.h"
#include "process_supervisor.h"
#include "server/router.h"

#ifndef AEDB_SERVERD_PATH
#define AEDB_SERVERD_PATH "aedb_serverd"
#endif

namespace aedb {
namespace {

using client::Driver;
using client::DriverOptions;
using fault::FaultSpec;
using fault::ScopedFault;
using server::Database;
using server::ShardedDatabase;
using server::ShardedOptions;
using types::Value;

/// A self-cleaning scratch directory (per-shard WALs + 2pc.log live here).
class TempDir {
 public:
  TempDir() {
    char templ[] = "/tmp/aedb_shard_torture_XXXXXX";
    char* made = mkdtemp(templ);
    EXPECT_NE(made, nullptr) << strerror(errno);
    path_ = made == nullptr ? "/tmp" : made;
  }
  ~TempDir() { RemoveTree(path_); }
  const std::string& path() const { return path_; }

 private:
  static void RemoveTree(const std::string& dir) {
    DIR* d = opendir(dir.c_str());
    if (d != nullptr) {
      while (struct dirent* e = readdir(d)) {
        if (std::strcmp(e->d_name, ".") == 0 ||
            std::strcmp(e->d_name, "..") == 0)
          continue;
        std::string child = dir + "/" + e->d_name;
        struct stat st;
        if (lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
          RemoveTree(child);
        } else {
          unlink(child.c_str());
        }
      }
      closedir(d);
    }
    rmdir(dir.c_str());
  }

  std::string path_;
};

// ---------------------------------------------------------------------------
// Part 1: in-process fault matrix

class ShardTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Global().Reset();
    vault_ = std::make_unique<keys::InMemoryKeyVault>();
    ASSERT_TRUE(vault_->CreateKey("kv/torture", 1024).ok());
    ASSERT_TRUE(registry_.Register(vault_.get()).ok());
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("shard-torture")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
    hgs_ = std::make_unique<attestation::HostGuardianService>();
  }
  void TearDown() override { fault::FaultRegistry::Global().Reset(); }

  void Build(uint32_t shards, const std::string& data_dir = "") {
    ShardedOptions opts;
    opts.shards = shards;
    opts.base.data_dir = data_dir;
    sharded_ =
        std::make_unique<ShardedDatabase>(std::move(opts), hgs_.get(), &image_);
    for (uint32_t i = 0; i < shards; ++i) {
      hgs_->RegisterTcgLog(sharded_->shard(i)->platform()->tcg_log());
    }
    ASSERT_TRUE(sharded_->Open().ok());
    DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    driver_ = std::make_unique<Driver>(sharded_.get(), &registry_,
                                       hgs_->signing_public(), dopts);
  }

  /// Warehouse rows w=1 (shard 0) and w=2 (shard 1), W_YTD = 0.
  void SetupLedger() {
    ASSERT_TRUE(
        driver_->ExecuteDdl("CREATE TABLE Warehouse (W_ID INT, W_YTD INT)")
            .ok());
    for (int w = 1; w <= 2; ++w) {
      auto r =
          driver_->Query("INSERT INTO Warehouse (W_ID, W_YTD) VALUES (@w, 0)",
                         {{"w", Value::Int32(w)}});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }

  /// One cross-shard transaction: set both warehouses' W_YTD to `v`.
  Status CrossShardSet(int v) {
    uint64_t txn = driver_->Begin();
    for (int w = 1; w <= 2; ++w) {
      auto r = driver_->Query("UPDATE Warehouse SET W_YTD = @v WHERE W_ID = @w",
                              {{"v", Value::Int32(v)}, {"w", Value::Int32(w)}},
                              txn);
      if (!r.ok()) {
        (void)driver_->Rollback(txn);
        return r.status();
      }
    }
    return driver_->Commit(txn);
  }

  /// Both warehouses' W_YTD, read straight off each shard's engine (the
  /// router must not be able to paper over a divergence).
  void ReadBoth(int* w1, int* w2) {
    auto q1 = sharded_->shard(sharded_->ShardOfWarehouse(1))
                  ->Execute("SELECT W_YTD FROM Warehouse WHERE W_ID = @w",
                            {Value::Int32(1)});
    auto q2 = sharded_->shard(sharded_->ShardOfWarehouse(2))
                  ->Execute("SELECT W_YTD FROM Warehouse WHERE W_ID = @w",
                            {Value::Int32(2)});
    ASSERT_TRUE(q1.ok()) << q1.status().ToString();
    ASSERT_TRUE(q2.ok()) << q2.status().ToString();
    ASSERT_EQ(q1->rows.size(), 1u);
    ASSERT_EQ(q2->rows.size(), 1u);
    *w1 = q1->rows[0][0].i32();
    *w2 = q2->rows[0][0].i32();
  }

  std::unique_ptr<keys::InMemoryKeyVault> vault_;
  keys::KeyProviderRegistry registry_;
  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<ShardedDatabase> sharded_;
  std::unique_ptr<Driver> driver_;
};

// Any failure before the commit decision is durable must abort on BOTH
// shards — and release every lock, so the next transaction sails through.
TEST_F(ShardTortureTest, PreDecisionFaultsAbortBothShards) {
  const char* points[] = {"2pc/pre_prepare", "2pc/prepared_no_decision",
                          "2pc/pre_commit_decision"};
  Build(2);
  SetupLedger();
  int committed = 0;
  for (const char* point : points) {
    {
      ScopedFault f(point, FaultSpec::OneShot(Status::Internal("injected")));
      Status st = CrossShardSet(committed + 100);
      ASSERT_FALSE(st.ok()) << point << " did not fire";
      EXPECT_EQ(st.code(), StatusCode::kTransactionAborted)
          << point << ": " << st.ToString();
    }
    int w1 = -1, w2 = -1;
    ReadBoth(&w1, &w2);
    EXPECT_EQ(w1, committed) << point << " leaked onto shard 0";
    EXPECT_EQ(w2, committed) << point << " leaked onto shard 1";
    // Locks must be gone: a clean cross-shard commit works immediately.
    committed += 1000;
    Status clean = CrossShardSet(committed);
    ASSERT_TRUE(clean.ok()) << "after " << point << ": " << clean.ToString();
    ReadBoth(&w1, &w2);
    EXPECT_EQ(w1, committed);
    EXPECT_EQ(w2, committed);
  }
  EXPECT_EQ(sharded_->two_phase_commits(), 3u);
}

// A coordinator crash AFTER the durable commit decision leaves both writers
// prepared (in-doubt); RecoverInDoubt() must finish the commit on both.
TEST_F(ShardTortureTest, CoordinatorCrashAfterDecisionCommitsOnRecovery) {
  Build(2);
  SetupLedger();
  {
    ScopedFault f("2pc/coordinator_crash",
                  FaultSpec::OneShot(Status::Internal("injected")));
    Status st = CrossShardSet(42);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  }
  // Both shards hold a prepared, undecided-looking txn.
  EXPECT_EQ(sharded_->shard(0)->engine().InDoubtTxns().size(), 1u);
  EXPECT_EQ(sharded_->shard(1)->engine().InDoubtTxns().size(), 1u);

  ASSERT_TRUE(sharded_->RecoverInDoubt().ok());
  int w1 = -1, w2 = -1;
  ReadBoth(&w1, &w2);
  EXPECT_EQ(w1, 42) << "durable decision lost on shard 0";
  EXPECT_EQ(w2, 42) << "durable decision lost on shard 1";
  EXPECT_TRUE(sharded_->shard(0)->engine().InDoubtTxns().empty());
  EXPECT_TRUE(sharded_->shard(1)->engine().InDoubtTxns().empty());
  // Normal traffic resumes.
  ASSERT_TRUE(CrossShardSet(43).ok());
}

// Same crash, but now each shard also crash/restarts (WAL replay) before the
// coordinator resolves: the prepare records resurface as in-doubt txns and
// the durable decision still commits them — on a durable data dir.
TEST_F(ShardTortureTest, InDoubtSurvivesShardRestarts) {
  TempDir dir;
  Build(2, dir.path());
  SetupLedger();
  {
    ScopedFault f("2pc/coordinator_crash",
                  FaultSpec::OneShot(Status::Internal("injected")));
    ASSERT_FALSE(CrossShardSet(7).ok());
  }
  for (uint32_t s = 0; s < 2; ++s) {
    auto rec = sharded_->RestartShard(s);
    ASSERT_TRUE(rec.ok()) << "shard " << s << ": " << rec.status().ToString();
    EXPECT_EQ(rec->in_doubt.size(), 1u)
        << "shard " << s << " lost its prepared txn across restart";
  }
  ASSERT_TRUE(sharded_->RecoverInDoubt().ok());
  int w1 = -1, w2 = -1;
  ReadBoth(&w1, &w2);
  EXPECT_EQ(w1, 7);
  EXPECT_EQ(w2, 7);
}

// An in-doubt transaction with NO durable decision is presumed abort: after
// both shards crash/restart, recovery rolls it back everywhere. (Built by
// driving the participants' Prepare directly — the only way to stop between
// prepare and decision without a process death.)
TEST_F(ShardTortureTest, InDoubtWithoutDecisionPresumedAbort) {
  TempDir dir;
  Build(2, dir.path());
  SetupLedger();
  constexpr uint64_t kGtid = 99999;
  for (uint32_t s = 0; s < 2; ++s) {
    Database* db = sharded_->shard(s);
    uint64_t local = db->BeginTransaction();
    auto r = db->Execute(
        "UPDATE Warehouse SET W_YTD = @v WHERE W_ID = @w",
        {Value::Int32(666), Value::Int32(static_cast<int>(s) + 1)}, local);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(db->engine().Prepare(local, kGtid).ok());
  }
  for (uint32_t s = 0; s < 2; ++s) {
    auto rec = sharded_->RestartShard(s);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->in_doubt.size(), 1u);
  }
  ASSERT_TRUE(sharded_->RecoverInDoubt().ok());
  int w1 = -1, w2 = -1;
  ReadBoth(&w1, &w2);
  EXPECT_EQ(w1, 0) << "presumed abort failed to undo shard 0";
  EXPECT_EQ(w2, 0) << "presumed abort failed to undo shard 1";
  // The rows are unlocked again.
  ASSERT_TRUE(CrossShardSet(5).ok());
}

// ---------------------------------------------------------------------------
// Part 2: kill -9 against a real 2-shard serverd at every 2PC boundary

constexpr uint64_t kKeySeed = 777;

class ShardKillTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (const char* run = std::getenv("AEDB_RUN_SHARD_TORTURE");
        run == nullptr || std::string(run) != "1") {
      GTEST_SKIP() << "set AEDB_RUN_SHARD_TORTURE=1 to run the 2PC kill -9 "
                      "torture harness (forks real servers)";
    }
    dir_ = std::make_unique<TempDir>();
    vault_ = std::make_unique<keys::InMemoryKeyVault>();
    ASSERT_TRUE(vault_->CreateKey("kv/shard-kill", 1024).ok());
    ASSERT_TRUE(registry_.Register(vault_.get()).ok());
    // Recreate the server's seeded attestation identities client-side (the
    // same --key-seed recipe serverd uses).
    Bytes seed;
    PutU64(&seed, kKeySeed);
    crypto::HmacDrbg drbg(Slice(seed), Slice(std::string_view("aedb-serverd")));
    auto author_key = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key);
    hgs_ = std::make_unique<attestation::HostGuardianService>(Slice(seed));
    server_ = std::make_unique<testing::ServerProcess>(AEDB_SERVERD_PATH);
  }

  void TearDown() override {
    driver_.reset();
    if (server_ != nullptr) (void)server_->Kill();
  }

  bool StartServer(const std::string& die_at = "") {
    std::vector<std::string> args = {
        "--port",     "0",
        "--shards",   "2",
        "--data-dir", dir_->path(),
        "--key-seed", std::to_string(kKeySeed),
        "--drain-deadline-ms", "10000",
    };
    if (!die_at.empty()) {
      args.push_back("--die-at");
      args.push_back(die_at);
    }
    Status st = server_->Start(args);
    if (!st.ok()) return false;
    port_ = server_->port();
    // One driver per server incarnation; each reconnect re-attests both
    // shard enclaves from scratch.
    DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    net::SocketTransport::Options topts;
    topts.port = port_;
    auto t = net::SocketTransport::Connect(topts);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    if (!t.ok()) return false;
    driver_ = std::make_unique<Driver>(std::move(t).value(), &registry_,
                                       hgs_->signing_public(), dopts);
    return true;
  }

  /// One cross-shard ledger transaction: INSERT (W_ID=1, seq) and
  /// (W_ID=2, seq) atomically. Acked seqs MUST survive; failed ones may have
  /// committed (coordinator-crash-after-decision) or not.
  Status LedgerTxn(int seq) {
    uint64_t txn = driver_->Begin();
    for (int w = 1; w <= 2; ++w) {
      auto r = driver_->Query("INSERT INTO Ledger (W_ID, SEQ) VALUES (@w, @s)",
                              {{"w", Value::Int32(w)}, {"s", Value::Int32(seq)}},
                              txn);
      if (!r.ok()) {
        (void)driver_->Rollback(txn);
        return r.status();
      }
    }
    return driver_->Commit(txn);
  }

  /// The atomicity + acked-prefix invariant, checked after every restart.
  void VerifyLedger(const std::string& where) {
    std::set<int> side[2];
    for (int w = 1; w <= 2; ++w) {
      auto r = driver_->Query("SELECT SEQ FROM Ledger WHERE W_ID = @w",
                              {{"w", Value::Int32(w)}});
      ASSERT_TRUE(r.ok()) << where << ": " << r.status().ToString();
      for (const auto& row : r->rows) side[w - 1].insert(row[0].i32());
    }
    // All-or-nothing: the two halves of every cross-shard txn live or die
    // together, across any kill point.
    EXPECT_EQ(side[0], side[1])
        << where << ": cross-shard transaction torn between shards";
    for (int seq : acked_) {
      EXPECT_EQ(side[0].count(seq), 1u)
          << where << ": acked seq " << seq << " lost (shard 0)";
      EXPECT_EQ(side[1].count(seq), 1u)
          << where << ": acked seq " << seq << " lost (shard 1)";
    }
    for (int seq : side[0]) {
      EXPECT_TRUE(acked_.count(seq) == 1 || maybe_.count(seq) == 1)
          << where << ": phantom seq " << seq << " was never issued";
    }
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<keys::InMemoryKeyVault> vault_;
  keys::KeyProviderRegistry registry_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<testing::ServerProcess> server_;
  std::unique_ptr<Driver> driver_;
  uint16_t port_ = 0;
  std::set<int> acked_;
  std::set<int> maybe_;
  int next_seq_ = 1;
};

TEST_F(ShardKillTortureTest, KillNineAtEveryTwoPcBoundary) {
  ASSERT_TRUE(StartServer()) << "initial server failed to start";
  ASSERT_TRUE(
      driver_->ExecuteDdl("CREATE TABLE Ledger (W_ID INT, SEQ INT)").ok());
  // Warm prefix before any shooting starts.
  for (int i = 0; i < 3; ++i) {
    int seq = next_seq_++;
    Status st = LedgerTxn(seq);
    ASSERT_TRUE(st.ok()) << st.ToString();
    acked_.insert(seq);
  }
  int wait_status = 0;
  driver_.reset();
  (void)server_->Terminate(&wait_status);

  const char* kill_points[] = {
      "2pc/pre_prepare",
      "2pc/prepared_no_decision",
      "2pc/pre_commit_decision",
      "2pc/coordinator_crash",
  };
  for (const char* point : kill_points) {
    SCOPED_TRACE(point);
    ASSERT_TRUE(StartServer(point)) << "restart with --die-at " << point;
    VerifyLedger(std::string("after recovery, arming ") + point);
    // Drive cross-shard txns until the armed fault _Exit(137)s the server
    // under us (the first 2PC reaching the point).
    bool died = false;
    for (int i = 0; i < 50 && !died; ++i) {
      int seq = next_seq_++;
      Status st = LedgerTxn(seq);
      if (st.ok()) {
        acked_.insert(seq);
      } else {
        maybe_.insert(seq);
        died = true;
      }
    }
    ASSERT_TRUE(died) << point << " never fired";
    int status = 0;
    ASSERT_TRUE(server_->WaitExit(&status).ok());
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 137)
        << point << ": unexpected exit status " << status;
  }

  // One more crash with no targeted fault: SIGKILL mid-burst.
  ASSERT_TRUE(StartServer());
  VerifyLedger("after final 2pc fault recovery");
  for (int i = 0; i < 5; ++i) {
    int seq = next_seq_++;
    Status st = LedgerTxn(seq);
    if (st.ok()) {
      acked_.insert(seq);
    } else {
      maybe_.insert(seq);
    }
    if (i == 2) server_->KillAsync();
  }
  (void)server_->WaitExit(nullptr);

  ASSERT_TRUE(StartServer());
  VerifyLedger("after mid-burst SIGKILL");
  // The recovered cluster still takes cross-shard commits.
  int seq = next_seq_++;
  Status st = LedgerTxn(seq);
  ASSERT_TRUE(st.ok()) << st.ToString();
  acked_.insert(seq);
  VerifyLedger("final");
}

}  // namespace
}  // namespace aedb
