#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/catalog.h"
#include "sql/parser.h"

namespace aedb::sql {
namespace {

using types::EncKind;
using types::EncryptionType;
using types::TypeId;

// --- Parser ---

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT a, b FROM t WHERE a = 5 AND b < @p LIMIT 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
  const SelectStmt& sel = *stmt->select;
  EXPECT_EQ(sel.items.size(), 2u);
  EXPECT_EQ(sel.table, "t");
  EXPECT_EQ(sel.limit, 3);
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->kind, Expr::Kind::kAnd);
}

TEST(ParserTest, SelectStarOrderBy) {
  auto stmt = Parse("select * from Customers order by name desc");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select->select_all);
  EXPECT_EQ(stmt->select->order_by, "name");
  EXPECT_TRUE(stmt->select->order_desc);
}

TEST(ParserTest, Aggregates) {
  auto stmt = Parse("SELECT COUNT(*), SUM(bal) AS total, MIN(a), MAX(a), AVG(a) "
                    "FROM t GROUP BY branch");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& sel = *stmt->select;
  ASSERT_EQ(sel.items.size(), 5u);
  EXPECT_EQ(sel.items[0].agg, AggFunc::kCount);
  EXPECT_TRUE(sel.items[0].star);
  EXPECT_EQ(sel.items[1].agg, AggFunc::kSum);
  EXPECT_EQ(sel.items[1].alias, "total");
  EXPECT_EQ(sel.group_by, "branch");
}

TEST(ParserTest, Join) {
  auto stmt = Parse("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z = 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->select->join_table, "b");
  EXPECT_EQ(stmt->select->join_left, "a.x");
  EXPECT_EQ(stmt->select->join_right, "b.y");
}

TEST(ParserTest, PredicateForms) {
  EXPECT_TRUE(Parse("SELECT * FROM t WHERE a BETWEEN 1 AND 10").ok());
  EXPECT_TRUE(Parse("SELECT * FROM t WHERE name LIKE 'SM%'").ok());
  EXPECT_TRUE(Parse("SELECT * FROM t WHERE name NOT LIKE '%x%'").ok());
  EXPECT_TRUE(Parse("SELECT * FROM t WHERE a IS NULL").ok());
  EXPECT_TRUE(Parse("SELECT * FROM t WHERE a IS NOT NULL").ok());
  EXPECT_TRUE(Parse("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)").ok());
  EXPECT_TRUE(Parse("SELECT * FROM t WHERE (a + 1) * 2 >= b / 3").ok());
}

TEST(ParserTest, InsertUpdateDelete) {
  auto ins = Parse("INSERT INTO t (a, b) VALUES (@x, 'hi'), (2, @y)");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->insert->rows.size(), 2u);
  auto upd = Parse("UPDATE t SET a = a + 1, b = @v WHERE c = 3");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->update->sets.size(), 2u);
  auto del = Parse("DELETE FROM t WHERE a = @k");
  ASSERT_TRUE(del.ok());
}

TEST(ParserTest, CreateTableWithEncryption) {
  auto stmt = Parse(
      "CREATE TABLE T (id INT NOT NULL, value INT ENCRYPTED WITH ("
      "COLUMN_ENCRYPTION_KEY = MyCEK, ENCRYPTION_TYPE = Randomized, "
      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const CreateTableStmt& ct = *stmt->create_table;
  ASSERT_EQ(ct.columns.size(), 2u);
  EXPECT_TRUE(ct.columns[0].not_null);
  EXPECT_FALSE(ct.columns[0].enc.encrypted);
  EXPECT_TRUE(ct.columns[1].enc.encrypted);
  EXPECT_EQ(ct.columns[1].enc.cek_name, "MyCEK");
  EXPECT_EQ(ct.columns[1].enc.kind, EncKind::kRandomized);
}

TEST(ParserTest, KeyDdl) {
  auto cmk = Parse(
      "CREATE COLUMN MASTER KEY MyCMK WITH ("
      "KEY_STORE_PROVIDER_NAME = N'AZURE_KEY_VAULT_PROVIDER', "
      "KEY_PATH = N'https://vault.example/keys/k1', "
      "ENCLAVE_COMPUTATIONS (SIGNATURE = 0x6FCF))");
  ASSERT_TRUE(cmk.ok()) << cmk.status().ToString();
  EXPECT_TRUE(cmk->create_cmk->enclave_computations);
  EXPECT_EQ(cmk->create_cmk->key_path, "https://vault.example/keys/k1");

  auto cek = Parse(
      "CREATE COLUMN ENCRYPTION KEY MyCEK WITH VALUES ("
      "COLUMN_MASTER_KEY = MyCMK, ALGORITHM = 'RSA_OAEP', "
      "ENCRYPTED_VALUE = 0x0170, SIGNATURE = 0xAB)");
  ASSERT_TRUE(cek.ok()) << cek.status().ToString();
  EXPECT_EQ(cek->create_cek->cmk, "MyCMK");
  EXPECT_EQ(cek->create_cek->encrypted_value, (Bytes{0x01, 0x70}));
}

TEST(ParserTest, AlterColumn) {
  auto stmt = Parse(
      "ALTER TABLE T ALTER COLUMN value INT ENCRYPTED WITH ("
      "COLUMN_ENCRYPTION_KEY = K2, ENCRYPTION_TYPE = Deterministic)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->alter_column->column, "value");
  EXPECT_EQ(stmt->alter_column->enc.kind, EncKind::kDeterministic);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELEKT * FROM t").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t extra junk").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE s = 'unterminated").ok());
}

// --- Binder / encryption-type inference (§4.3) ---

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // CEK ids: 1 = DET-usable enclave-disabled, 2 = enclave-enabled.
    keys::CmkInfo plain_cmk;
    plain_cmk.name = "cmk_plain";
    plain_cmk.provider_name = "p";
    plain_cmk.key_path = "kp1";
    plain_cmk.enclave_enabled = false;
    ASSERT_TRUE(catalog_.AddCmk(plain_cmk).ok());
    keys::CmkInfo enclave_cmk = plain_cmk;
    enclave_cmk.name = "cmk_enclave";
    enclave_cmk.key_path = "kp2";
    enclave_cmk.enclave_enabled = true;
    ASSERT_TRUE(catalog_.AddCmk(enclave_cmk).ok());
    keys::CekInfo cek1;
    cek1.name = "cek1";
    cek1.values.push_back({"cmk_plain", "RSA_OAEP", {1}, {2}});
    ASSERT_TRUE(catalog_.AddCek(cek1).ok());
    keys::CekInfo cek2;
    cek2.name = "cek2";
    cek2.values.push_back({"cmk_enclave", "RSA_OAEP", {1}, {2}});
    ASSERT_TRUE(catalog_.AddCek(cek2).ok());

    TableDef t;
    t.name = "T";
    t.columns = {
        {"id", TypeId::kInt32, EncryptionType::Plaintext(), false},
        {"det_ssn", TypeId::kString,
         EncryptionType::Encrypted(EncKind::kDeterministic, 1, false), true},
        {"rnd_bal", TypeId::kInt64,
         EncryptionType::Encrypted(EncKind::kRandomized, 2, true), true},
        {"rnd_name", TypeId::kString,
         EncryptionType::Encrypted(EncKind::kRandomized, 2, true), true},
        {"rnd_noenclave", TypeId::kInt32,
         EncryptionType::Encrypted(EncKind::kRandomized, 1, false), true},
    };
    ASSERT_TRUE(catalog_.CreateTable(std::move(t)).ok());
  }

  Result<BoundStatement> Bind(const std::string& sql) {
    Statement stmt;
    AEDB_ASSIGN_OR_RETURN(stmt, Parse(sql));
    Binder binder(&catalog_);
    return binder.Bind(std::move(stmt));
  }

  Catalog catalog_;
};

TEST_F(BinderTest, ParamGetsColumnEncryptionType) {
  // The paper's Example 4.2: @v must come out Deterministic(cek of column).
  auto bound = Bind("SELECT * FROM T WHERE det_ssn = @v");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->params.size(), 1u);
  EXPECT_EQ(bound->params[0].name, "v");
  EXPECT_EQ(bound->params[0].type, TypeId::kString);
  EXPECT_EQ(bound->params[0].enc.kind, EncKind::kDeterministic);
  EXPECT_EQ(bound->params[0].enc.cek_id, 1u);
  EXPECT_FALSE(bound->requires_enclave);  // DET equality is host-evaluable
}

TEST_F(BinderTest, RndEqualityNeedsEnclave) {
  auto bound = Bind("SELECT * FROM T WHERE rnd_bal = @v");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_TRUE(bound->requires_enclave);
  EXPECT_EQ(bound->enclave_ceks, std::vector<uint32_t>{2});
  EXPECT_EQ(bound->params[0].enc.kind, EncKind::kRandomized);
}

TEST_F(BinderTest, RangeOnRndEnclaveOk) {
  EXPECT_TRUE(Bind("SELECT * FROM T WHERE rnd_bal > @v").ok());
  EXPECT_TRUE(Bind("SELECT * FROM T WHERE rnd_bal BETWEEN @a AND @b").ok());
  EXPECT_TRUE(Bind("SELECT * FROM T WHERE rnd_name LIKE @p").ok());
}

TEST_F(BinderTest, RangeOnDetRejectedWithoutEnclave) {
  auto r = Bind("SELECT * FROM T WHERE det_ssn < @v");
  EXPECT_TRUE(r.status().IsTypeCheckError()) << r.status().ToString();
}

TEST_F(BinderTest, NothingOnRndWithoutEnclave) {
  auto r = Bind("SELECT * FROM T WHERE rnd_noenclave = @v");
  EXPECT_TRUE(r.status().IsTypeCheckError());
}

TEST_F(BinderTest, LiteralAgainstEncryptedRejected) {
  // Literals are plaintext in the query text; only parameters can be
  // encrypted (transparency via parameterized queries, §2.5).
  auto r = Bind("SELECT * FROM T WHERE det_ssn = 'abc'");
  EXPECT_TRUE(r.status().IsTypeCheckError()) << r.status().ToString();
}

TEST_F(BinderTest, CrossCekComparisonRejected) {
  auto r = Bind("SELECT * FROM T WHERE det_ssn = rnd_name");
  EXPECT_TRUE(r.status().IsTypeCheckError());
}

TEST_F(BinderTest, TransitiveConstraintThroughParams) {
  // @p = @q AND @p = rnd_bal: the class constraint propagates so @q also
  // resolves Randomized (validated post-solve).
  auto bound = Bind("SELECT * FROM T WHERE @p = @q AND @p = rnd_bal");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  for (const BoundParam& p : bound->params) {
    EXPECT_EQ(p.enc.kind, EncKind::kRandomized) << p.name;
    EXPECT_EQ(p.enc.cek_id, 2u);
  }
}

TEST_F(BinderTest, UnconstrainedParamResolvesPlaintext) {
  auto bound = Bind("SELECT * FROM T WHERE id = @v");
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(bound->params[0].enc.is_encrypted());
  EXPECT_FALSE(bound->requires_enclave);
}

TEST_F(BinderTest, ArithmeticOnEncryptedRejected) {
  auto r = Bind("SELECT * FROM T WHERE rnd_bal + 1 = @v");
  EXPECT_TRUE(r.status().IsTypeCheckError());
}

TEST_F(BinderTest, OrderByEncryptedRejected) {
  auto r = Bind("SELECT * FROM T ORDER BY rnd_name");
  EXPECT_TRUE(r.status().IsTypeCheckError());
}

TEST_F(BinderTest, GroupByDetAllowedRndRejected) {
  EXPECT_TRUE(Bind("SELECT det_ssn, COUNT(*) FROM T GROUP BY det_ssn").ok());
  EXPECT_TRUE(Bind("SELECT rnd_name, COUNT(*) FROM T GROUP BY rnd_name")
                  .status()
                  .IsTypeCheckError());
}

TEST_F(BinderTest, AggregateOverEncryptedRejected) {
  auto r = Bind("SELECT SUM(rnd_bal) FROM T");
  EXPECT_TRUE(r.status().IsTypeCheckError());
}

TEST_F(BinderTest, InsertParamsInheritColumnTypes) {
  auto bound = Bind(
      "INSERT INTO T (id, det_ssn, rnd_bal) VALUES (@i, @s, @b)");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->params.size(), 3u);
  EXPECT_FALSE(bound->params[0].enc.is_encrypted());
  EXPECT_EQ(bound->params[1].enc.kind, EncKind::kDeterministic);
  EXPECT_EQ(bound->params[2].enc.kind, EncKind::kRandomized);
  EXPECT_EQ(bound->params[2].type, TypeId::kInt64);
  // Writes never need the enclave: the driver encrypts.
  EXPECT_FALSE(bound->requires_enclave);
}

TEST_F(BinderTest, UnknownNamesRejected) {
  EXPECT_TRUE(Bind("SELECT * FROM NoSuch WHERE a = 1").status().IsNotFound());
  EXPECT_TRUE(Bind("SELECT * FROM T WHERE nocol = 1").status().IsNotFound());
}

TEST_F(BinderTest, IsNullOnEncryptedNeedsEnclave) {
  auto ok = Bind("SELECT * FROM T WHERE rnd_bal IS NULL");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->requires_enclave);
  EXPECT_TRUE(Bind("SELECT * FROM T WHERE rnd_noenclave IS NULL")
                  .status()
                  .IsTypeCheckError());
}

// --- Catalog & rows ---

TEST(CatalogTest, RowCodecRoundTrip) {
  std::vector<types::Value> row = {
      types::Value::Int32(7),
      types::Value::String("x"),
      types::Value::Null(TypeId::kInt64),
      types::Value::Binary({1, 2, 3}),
  };
  Bytes rec = EncodeRow(row);
  auto back = DecodeRow(rec, 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, row);
  EXPECT_FALSE(DecodeRow(rec, 3).ok());  // trailing bytes detected
}

TEST(CatalogTest, CaseInsensitiveLookups) {
  Catalog catalog;
  TableDef t;
  t.name = "Customers";
  t.columns = {{"Name", TypeId::kString, EncryptionType::Plaintext(), true}};
  ASSERT_TRUE(catalog.CreateTable(std::move(t)).ok());
  auto found = catalog.GetTable("CUSTOMERS");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->FindColumn("name"), 0);
}

}  // namespace
}  // namespace aedb::sql
