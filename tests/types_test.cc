#include <gtest/gtest.h>

#include "types/encryption_type.h"
#include "types/value.h"

namespace aedb::types {
namespace {

TEST(ValueTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Value::Bool(true).type(), TypeId::kBool);
  EXPECT_TRUE(Value::Bool(true).bool_v());
  EXPECT_EQ(Value::Int32(-5).i32(), -5);
  EXPECT_EQ(Value::Int64(1LL << 40).i64(), 1LL << 40);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_EQ(Value::String("hi").str(), "hi");
  EXPECT_EQ(Value::Binary({1, 2}).bin(), (Bytes{1, 2}));
  EXPECT_TRUE(Value::Null(TypeId::kString).is_null());
  EXPECT_EQ(Value::Null(TypeId::kString).type(), TypeId::kString);
}

TEST(ValueTest, CompareSameType) {
  EXPECT_EQ(*Value::Int32(1).Compare(Value::Int32(2)), -1);
  EXPECT_EQ(*Value::Int64(5).Compare(Value::Int64(5)), 0);
  EXPECT_EQ(*Value::String("b").Compare(Value::String("a")), 1);
  EXPECT_EQ(*Value::Binary({1}).Compare(Value::Binary({1, 0})), -1);
  EXPECT_EQ(*Value::Bool(false).Compare(Value::Bool(true)), -1);
}

TEST(ValueTest, CompareNumericCrossWidth) {
  EXPECT_EQ(*Value::Int32(7).Compare(Value::Int64(7)), 0);
  EXPECT_EQ(*Value::Int32(7).Compare(Value::Double(7.5)), -1);
  EXPECT_EQ(*Value::Double(8.0).Compare(Value::Int64(7)), 1);
}

TEST(ValueTest, CompareIncompatibleTypesFails) {
  EXPECT_FALSE(Value::Int32(1).Compare(Value::String("1")).ok());
  EXPECT_FALSE(Value::Bool(true).Compare(Value::Int32(1)).ok());
}

TEST(ValueTest, CompareNullFails) {
  EXPECT_FALSE(Value::Null(TypeId::kInt32).Compare(Value::Int32(1)).ok());
}

TEST(ValueTest, HashConsistentAcrossNumericWidths) {
  EXPECT_EQ(Value::Int32(42).Hash(), Value::Int64(42).Hash());
  EXPECT_EQ(Value::Int32(42).Hash(), Value::Double(42.0).Hash());
  EXPECT_NE(Value::Int32(42).Hash(), Value::Int32(43).Hash());
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  Value vals[] = {
      Value::Bool(true),
      Value::Bool(false),
      Value::Int32(-123),
      Value::Int64(1LL << 50),
      Value::Double(3.14159),
      Value::String("hello world"),
      Value::String(""),
      Value::Binary({0, 1, 2, 255}),
      Value::Null(TypeId::kInt64),
      Value::Null(TypeId::kString),
  };
  Bytes buf;
  for (const Value& v : vals) v.EncodeTo(&buf);
  size_t off = 0;
  for (const Value& v : vals) {
    auto back = Value::Decode(buf, &off);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(*back == v) << v.ToString();
  }
  EXPECT_EQ(off, buf.size());
}

TEST(ValueTest, DecodeRejectsGarbage) {
  Bytes junk = {0x77, 0x00, 0x00};
  size_t off = 0;
  EXPECT_FALSE(Value::Decode(junk, &off).ok());
  Bytes empty;
  off = 0;
  EXPECT_FALSE(Value::Decode(empty, &off).ok());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int32(5).ToString(), "5");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::Null(TypeId::kInt32).ToString(), "NULL");
  EXPECT_EQ(Value::Binary({0xab}).ToString(), "0xab");
}

struct LikeCase {
  const char* value;
  const char* pattern;
  bool expected;
};

class SqlLikeTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(SqlLikeTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(SqlLike(c.value, c.pattern), c.expected)
      << c.value << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SqlLikeTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true}, LikeCase{"hello", "h%", true},
        LikeCase{"hello", "%o", true}, LikeCase{"hello", "%ell%", true},
        LikeCase{"hello", "h_llo", true}, LikeCase{"hello", "_____", true},
        LikeCase{"hello", "____", false}, LikeCase{"hello", "world", false},
        LikeCase{"hello", "%", true}, LikeCase{"", "%", true},
        LikeCase{"", "_", false}, LikeCase{"abc", "a%c", true},
        LikeCase{"abc", "a%b", false}, LikeCase{"aXbXc", "a%b%c", true},
        LikeCase{"BARBARBAR", "%BAR", true},
        LikeCase{"mississippi", "%ss%ss%", true},
        LikeCase{"mississippi", "m%x%", false}));

TEST(LikePatternTest, PrefixDetection) {
  EXPECT_TRUE(IsPrefixLikePattern("SMI%"));
  EXPECT_FALSE(IsPrefixLikePattern("%SMI"));
  EXPECT_FALSE(IsPrefixLikePattern("S_I%"));
  EXPECT_FALSE(IsPrefixLikePattern("S%I%"));
  EXPECT_FALSE(IsPrefixLikePattern("%"));
  EXPECT_FALSE(IsPrefixLikePattern("SMI"));
}

TEST(EncryptionTypeTest, LatticeOrder) {
  // Figure 6: Plaintext ≤ Deterministic ≤ Randomized.
  EXPECT_TRUE(EncKindLeq(EncKind::kPlaintext, EncKind::kDeterministic));
  EXPECT_TRUE(EncKindLeq(EncKind::kDeterministic, EncKind::kRandomized));
  EXPECT_TRUE(EncKindLeq(EncKind::kPlaintext, EncKind::kRandomized));
  EXPECT_FALSE(EncKindLeq(EncKind::kRandomized, EncKind::kDeterministic));
  EXPECT_TRUE(EncKindLeq(EncKind::kDeterministic, EncKind::kDeterministic));
}

TEST(EncryptionTypeTest, Properties) {
  EncryptionType pt = EncryptionType::Plaintext();
  EXPECT_FALSE(pt.is_encrypted());
  EncryptionType det = EncryptionType::Encrypted(EncKind::kDeterministic, 7, false);
  EXPECT_TRUE(det.is_encrypted());
  EXPECT_EQ(det.scheme(), crypto::EncryptionScheme::kDeterministic);
  EncryptionType rnd = EncryptionType::Encrypted(EncKind::kRandomized, 7, true);
  EXPECT_EQ(rnd.scheme(), crypto::EncryptionScheme::kRandomized);
  EXPECT_FALSE(det == rnd);
  EXPECT_TRUE(det == EncryptionType::Encrypted(EncKind::kDeterministic, 7, false));
}

}  // namespace
}  // namespace aedb::types
