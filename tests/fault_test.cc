#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/driver.h"
#include "client/retry.h"
#include "crypto/drbg.h"
#include "fault/fault.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "server/database.h"
#include "storage/engine.h"
#include "storage/wal.h"
#include "tpcc/tpcc.h"

namespace aedb {
namespace {

using client::Driver;
using client::DriverOptions;
using client::ErrorClass;
using fault::FaultRegistry;
using fault::FaultSpec;
using fault::ScopedFault;
using types::Value;

Bytes B(std::string_view s) { return Slice(s).ToBytes(); }

/// Every fault test starts and ends with a clean global registry, so a
/// failing test cannot leak an armed fault into its neighbours.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

// ===========================================================================
// Registry semantics
// ===========================================================================

TEST_F(FaultTest, UnarmedPointIsOkAndRecordsNothing) {
  EXPECT_FALSE(FaultRegistry::AnyArmed());
  EXPECT_TRUE(AEDB_FAULT_POINT("nowhere/at-all").ok());
  EXPECT_EQ(FaultRegistry::Global().hits("nowhere/at-all"), 0u);
}

TEST_F(FaultTest, OneShotFiresExactlyOnce) {
  FaultRegistry::Global().Arm("p", FaultSpec::OneShot(Status::Internal("boom")));
  EXPECT_TRUE(FaultRegistry::AnyArmed());
  Status first = AEDB_FAULT_POINT("p");
  EXPECT_EQ(first.code(), StatusCode::kInternal);
  EXPECT_EQ(first.message(), "boom");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(AEDB_FAULT_POINT("p").ok());
  EXPECT_EQ(FaultRegistry::Global().hits("p"), 6u);
  EXPECT_EQ(FaultRegistry::Global().fires("p"), 1u);
}

TEST_F(FaultTest, AlwaysFiresOnEveryHit) {
  FaultRegistry::Global().Arm("p", FaultSpec::Always(Status::Unavailable("x")));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(AEDB_FAULT_POINT("p").code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(FaultRegistry::Global().fires("p"), 4u);
}

TEST_F(FaultTest, EveryNthWithSkipFiresOnSchedule) {
  FaultSpec spec = FaultSpec::EveryNth(3, Status::Internal("nth"));
  spec.skip = 2;  // hits 1,2 pass; then every 3rd eligible hit: 5, 8, 11, ...
  FaultRegistry::Global().Arm("p", spec);
  std::vector<int> fired;
  for (int hit = 1; hit <= 12; ++hit) {
    if (!AEDB_FAULT_POINT("p").ok()) fired.push_back(hit);
  }
  EXPECT_EQ(fired, (std::vector<int>{5, 8, 11}));
}

TEST_F(FaultTest, ProbabilityScheduleIsDeterministicUnderSeed) {
  auto schedule = [&]() {
    FaultRegistry::Global().Arm(
        "p", FaultSpec::WithProbability(0.5, 1234, Status::Internal("p")));
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(!AEDB_FAULT_POINT("p").ok());
    return fires;
  };
  std::vector<bool> a = schedule();
  std::vector<bool> b = schedule();  // re-arm resets the PRNG to the seed
  EXPECT_EQ(a, b);
  // Not degenerate: a 50% coin fires some but not all of 64 hits.
  size_t count = 0;
  for (bool f : a) count += f;
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, 64u);
}

TEST_F(FaultTest, CountersSurviveDisarmAndRearmResetsTrigger) {
  FaultRegistry::Global().Arm("p", FaultSpec::OneShot(Status::Internal("x")));
  EXPECT_FALSE(AEDB_FAULT_POINT("p").ok());
  EXPECT_TRUE(AEDB_FAULT_POINT("p").ok());  // one-shot spent
  FaultRegistry::Global().Disarm("p");
  EXPECT_FALSE(FaultRegistry::AnyArmed());
  EXPECT_TRUE(AEDB_FAULT_POINT("p").ok());  // disarmed: no-op, not counted
  EXPECT_EQ(FaultRegistry::Global().hits("p"), 2u);
  EXPECT_EQ(FaultRegistry::Global().fires("p"), 1u);

  // Re-arming resets the one-shot (it fires again) but keeps counters.
  FaultRegistry::Global().Arm("p", FaultSpec::OneShot(Status::Internal("x")));
  EXPECT_FALSE(AEDB_FAULT_POINT("p").ok());
  EXPECT_EQ(FaultRegistry::Global().fires("p"), 2u);
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault guard("p", FaultSpec::Always(Status::Internal("scoped")));
    EXPECT_FALSE(AEDB_FAULT_POINT("p").ok());
  }
  EXPECT_FALSE(FaultRegistry::AnyArmed());
  EXPECT_TRUE(AEDB_FAULT_POINT("p").ok());
}

TEST_F(FaultTest, FiredWithSpecExposesArgAndStatus) {
  FaultSpec spec = FaultSpec::OneShot(Status::Unavailable("custom"));
  spec.arg = 17;
  FaultRegistry::Global().Arm("p", spec);
  FaultSpec seen;
  ASSERT_TRUE(AEDB_FAULT_FIRED("p", &seen));
  EXPECT_EQ(seen.arg, 17u);
  EXPECT_EQ(seen.status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(AEDB_FAULT_FIRED("p", &seen));
}

// ===========================================================================
// Error classification and backoff
// ===========================================================================

TEST_F(FaultTest, ClassificationTable) {
  using client::ClassifyError;
  // Re-attest: the enclave session or its keys are gone.
  EXPECT_EQ(ClassifyError(Status::SessionNotFound("s")), ErrorClass::kReattest);
  EXPECT_EQ(ClassifyError(Status::KeyNotInEnclave("k")), ErrorClass::kReattest);
  // Mixed-version compat: older servers spell it NotFound("...enclave
  // session...").
  EXPECT_EQ(ClassifyError(Status::NotFound("unknown enclave session 7")),
            ErrorClass::kReattest);
  // Reconnect: transport-level unavailability.
  EXPECT_EQ(ClassifyError(Status::Unavailable("conn dropped")),
            ErrorClass::kReconnect);
  // Everything else is deterministic and fatal.
  EXPECT_EQ(ClassifyError(Status::NotFound("no such table")),
            ErrorClass::kFatal);
  EXPECT_EQ(ClassifyError(Status::InvalidArgument("bad sql")),
            ErrorClass::kFatal);
  EXPECT_EQ(ClassifyError(Status::SecurityError("tamper")), ErrorClass::kFatal);
  EXPECT_EQ(ClassifyError(Status::Internal("bug")), ErrorClass::kFatal);
  EXPECT_EQ(ClassifyError(Status::PermissionDenied("no")), ErrorClass::kFatal);
  EXPECT_EQ(ClassifyError(Status::TransactionAborted("ta")),
            ErrorClass::kFatal);
}

TEST_F(FaultTest, BackoffIsDeterministicBoundedAndJittered) {
  client::RetryPolicy policy;
  policy.base_backoff = std::chrono::milliseconds(2);
  policy.max_backoff = std::chrono::milliseconds(100);

  Xoshiro256 a(policy.jitter_seed), b(policy.jitter_seed);
  for (int attempt = 0; attempt < 12; ++attempt) {
    auto da = client::ComputeBackoff(attempt, policy, &a);
    auto db = client::ComputeBackoff(attempt, policy, &b);
    EXPECT_EQ(da, db) << "attempt " << attempt;  // same seed, same schedule
    EXPECT_LE(da, policy.max_backoff);
    EXPECT_GE(da.count(), 0);
    // Jitter scales into [50%, 100%] of the exponential step.
    int64_t step = std::min<int64_t>(policy.max_backoff.count(),
                                     policy.base_backoff.count() << attempt);
    EXPECT_GE(da.count(), step / 2);
    EXPECT_LE(da.count(), step);
  }
  // A different seed decorrelates the schedule (thundering-herd defence).
  Xoshiro256 c(policy.jitter_seed + 1);
  bool any_diff = false;
  Xoshiro256 a2(policy.jitter_seed);
  for (int attempt = 0; attempt < 12; ++attempt) {
    if (client::ComputeBackoff(attempt, policy, &a2) !=
        client::ComputeBackoff(attempt, policy, &c)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

// ===========================================================================
// WAL fault points
// ===========================================================================

storage::LogRecord SampleRecord(uint64_t txn, std::string_view payload) {
  storage::LogRecord r;
  r.txn_id = txn;
  r.type = storage::LogRecordType::kHeapInsert;
  r.object_id = 1;
  r.rid = storage::Rid{0, 0};
  r.payload1 = B(payload);
  return r;
}

TEST_F(FaultTest, WalAppendFaultFailsCleanly) {
  storage::Wal wal;
  FaultRegistry::Global().Arm("wal/append",
                              FaultSpec::OneShot(Status::Internal("disk")));
  EXPECT_FALSE(wal.Append(SampleRecord(1, "lost")).ok());
  EXPECT_EQ(wal.record_count(), 0u);  // nothing half-written
  auto lsn = wal.Append(SampleRecord(1, "kept"));
  ASSERT_TRUE(lsn.ok());
  auto parsed = storage::Wal::ParseImage(wal.RawBytes());
  EXPECT_FALSE(parsed.torn_tail);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].payload1, B("kept"));
}

TEST_F(FaultTest, WalTornAppendLeavesDetectableTornTail) {
  storage::Wal wal;
  ASSERT_TRUE(wal.Append(SampleRecord(1, "intact")).ok());
  FaultRegistry::Global().Arm("wal/torn_append",
                              FaultSpec::OneShot(Status::Internal("crash")));
  EXPECT_FALSE(wal.Append(SampleRecord(1, "torn-away")).ok());

  // The durable image now ends in a half-written frame; parsing must keep
  // the intact prefix and flag (not fail on) the tail.
  auto parsed = storage::Wal::ParseImage(wal.RawBytes());
  EXPECT_TRUE(parsed.torn_tail);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].payload1, B("intact"));
  EXPECT_LT(parsed.bytes_consumed, wal.RawBytes().size());

  // A fresh WAL loading that image recovers the prefix and keeps appending.
  storage::Wal recovered;
  auto load = recovered.LoadImage(wal.RawBytes());
  EXPECT_TRUE(load.torn_tail);
  EXPECT_EQ(recovered.record_count(), 1u);
  EXPECT_TRUE(recovered.Append(SampleRecord(2, "after")).ok());
  auto reparsed = storage::Wal::ParseImage(recovered.RawBytes());
  EXPECT_FALSE(reparsed.torn_tail);
  EXPECT_EQ(reparsed.records.size(), 2u);
}

TEST_F(FaultTest, WalSyncFaultSurfaces) {
  storage::Wal wal;
  ASSERT_TRUE(wal.Sync().ok());
  FaultRegistry::Global().Arm("wal/sync",
                              FaultSpec::OneShot(Status::Internal("fsync")));
  EXPECT_FALSE(wal.Sync().ok());
  EXPECT_TRUE(wal.Sync().ok());
}

// ===========================================================================
// Engine commit durability under injected failures
// ===========================================================================

class EngineFaultTest : public FaultTest {
 protected:
  static constexpr uint32_t kTable = 1;

  std::unique_ptr<storage::StorageEngine> MakeEngine() {
    auto engine = std::make_unique<storage::StorageEngine>();
    EXPECT_TRUE(engine->CreateTable(kTable).ok());
    return engine;
  }
};

TEST_F(EngineFaultTest, SyncFailureAtCommitAbortsAndUndoes) {
  auto engine = MakeEngine();
  uint64_t txn = engine->Begin();
  ASSERT_TRUE(engine->HeapInsert(txn, kTable, B("doomed")).ok());

  FaultRegistry::Global().Arm("wal/sync",
                              FaultSpec::OneShot(Status::Internal("fsync")));
  Status st = engine->Commit(txn);
  EXPECT_EQ(st.code(), StatusCode::kTransactionAborted) << st.ToString();
  EXPECT_EQ(engine->table(kTable)->live_rows(), 0u);  // effects undone

  // The application-level contract: restart the transaction and it works.
  uint64_t retry = engine->Begin();
  ASSERT_TRUE(engine->HeapInsert(retry, kTable, B("survives")).ok());
  ASSERT_TRUE(engine->Commit(retry).ok());
  EXPECT_EQ(engine->table(kTable)->live_rows(), 1u);

  // And recovery from the log agrees: only the retried transaction exists.
  auto engine2 = MakeEngine();
  engine2->wal().Replace(engine->wal().Snapshot());
  ASSERT_TRUE(engine2->Recover().ok());
  EXPECT_EQ(engine2->table(kTable)->live_rows(), 1u);
}

TEST_F(EngineFaultTest, CommitRecordAppendFailureAbortsAndUndoes) {
  auto engine = MakeEngine();
  uint64_t txn = engine->Begin();
  ASSERT_TRUE(engine->HeapInsert(txn, kTable, B("doomed")).ok());

  // Armed after the data appends, so the one-shot lands exactly on the next
  // append — the commit record. This is the "crash after fsync of the data
  // records, before the commit record" point.
  FaultRegistry::Global().Arm(
      "wal/append", FaultSpec::OneShot(Status::Internal("commit append")));
  Status st = engine->Commit(txn);
  EXPECT_EQ(st.code(), StatusCode::kTransactionAborted) << st.ToString();
  EXPECT_EQ(FaultRegistry::Global().fires("wal/append"), 1u);
  EXPECT_EQ(engine->table(kTable)->live_rows(), 0u);

  auto engine2 = MakeEngine();
  engine2->wal().Replace(engine->wal().Snapshot());
  ASSERT_TRUE(engine2->Recover().ok());
  EXPECT_EQ(engine2->table(kTable)->live_rows(), 0u);  // loser stayed lost
}

// ===========================================================================
// Wire protocol: retry attempt stamping
// ===========================================================================

TEST_F(FaultTest, QueryReqRetryByteRoundTripsAndDefaultsToZero) {
  net::QueryNamedReq req;
  req.sql = "SELECT 1";
  req.retry = 3;
  req.deadline_ms = 250;
  auto decoded = net::QueryNamedReq::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->retry, 3);
  EXPECT_EQ(decoded->deadline_ms, 250u);

  // A frame from an older client (no trailing retry byte, no deadline field)
  // still decodes: strip the u32 deadline and the retry byte.
  net::QueryNamedReq old_req;
  old_req.sql = "SELECT 1";
  Bytes encoded = old_req.Encode();
  encoded.resize(encoded.size() - 5);  // the pre-retry wire form
  auto legacy = net::QueryNamedReq::Decode(encoded);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->retry, 0);
  EXPECT_EQ(legacy->deadline_ms, 0u);

  // The intermediate form (retry byte present, no deadline) also decodes.
  Bytes mid = old_req.Encode();
  mid.resize(mid.size() - 4);  // strip only the deadline u32
  auto middecoded = net::QueryNamedReq::Decode(mid);
  ASSERT_TRUE(middecoded.ok());
  EXPECT_EQ(middecoded->deadline_ms, 0u);
}

// ===========================================================================
// Networked fixture: server + socket driver under injected faults
// ===========================================================================

class NetFaultTest : public FaultTest {
 protected:
  static constexpr const char* kVaultPath = "kv/fault-test";

  void SetUp() override {
    FaultTest::SetUp();
    vault_ = std::make_unique<keys::InMemoryKeyVault>();
    ASSERT_TRUE(vault_->CreateKey(kVaultPath, 1024).ok());
    ASSERT_TRUE(registry_.Register(vault_.get()).ok());

    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("fault-author")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
    hgs_ = std::make_unique<attestation::HostGuardianService>();

    server::ServerOptions opts;
    opts.engine.lock_timeout = std::chrono::milliseconds(200);
    db_ = std::make_unique<server::Database>(opts, hgs_.get(), &image_);
    hgs_->RegisterTcgLog(db_->platform()->tcg_log());

    net::ServerConfig config;
    config.read_timeout_ms = 2000;
    config.write_timeout_ms = 2000;
    server_ = std::make_unique<net::Server>(db_.get(), config);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
    FaultTest::TearDown();
  }

  Result<std::unique_ptr<client::Transport>> ConnectTransport() {
    net::SocketTransport::Options topts;
    topts.port = server_->port();
    topts.timeout_ms = 5000;
    auto t = net::SocketTransport::Connect(topts);
    if (!t.ok()) return t.status();
    return std::unique_ptr<client::Transport>(std::move(t).value());
  }

  /// Socket driver with the recovery loop on and a reconnect factory. The
  /// backoff floor is zeroed so tests don't sleep.
  std::unique_ptr<Driver> MakeSocketDriver() {
    auto transport = ConnectTransport();
    EXPECT_TRUE(transport.ok()) << transport.status().ToString();
    if (!transport.ok()) return nullptr;
    DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    dopts.retry.base_backoff = std::chrono::milliseconds(0);
    dopts.retry.max_backoff = std::chrono::milliseconds(0);
    dopts.transport_factory = [this] { return ConnectTransport(); };
    return std::make_unique<Driver>(std::move(transport).value(), &registry_,
                                    hgs_->signing_public(), dopts);
  }

  std::unique_ptr<Driver> MakeInProcessDriver() {
    DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    return std::make_unique<Driver>(db_.get(), &registry_,
                                    hgs_->signing_public(), dopts);
  }

  std::unique_ptr<keys::InMemoryKeyVault> vault_;
  keys::KeyProviderRegistry registry_;
  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<server::Database> db_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(NetFaultTest, WorkerErrorAnswersTypedFrameAndSelectRetriesTransparently) {
  auto driver = MakeSocketDriver();
  ASSERT_TRUE(driver);
  ASSERT_TRUE(driver->ExecuteDdl("CREATE TABLE T (id INT, v INT)").ok());
  ASSERT_TRUE(driver
                  ->Query("INSERT INTO T (id, v) VALUES (@i, @v)",
                          {{"i", Value::Int32(1)}, {"v", Value::Int32(7)}})
                  .ok());

  FaultRegistry::Global().Arm("net/worker_error",
                              FaultSpec::OneShot(Status::Internal("ignored")));
  auto rs = driver->Query("SELECT v FROM T WHERE id = @i",
                          {{"i", Value::Int32(1)}});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].i32(), 7);

  // The failure travelled as a typed kUnavailable error frame (the connection
  // stayed open — no reconnect), the driver retried once, and the server saw
  // the retry-stamped frame.
  EXPECT_EQ(FaultRegistry::Global().fires("net/worker_error"), 1u);
  EXPECT_GE(driver->retries(), 1);
  EXPECT_EQ(driver->reconnects(), 0);
  EXPECT_GE(server_->stats().retries_seen.load(), 1u);
  EXPECT_GE(server_->stats().request_errors.load(), 1u);
}

TEST_F(NetFaultTest, WorkerErrorOnWriteIsNotReplayed) {
  auto driver = MakeSocketDriver();
  ASSERT_TRUE(driver);
  ASSERT_TRUE(driver->ExecuteDdl("CREATE TABLE T (id INT)").ok());
  FaultRegistry::Global().Arm("net/worker_error",
                              FaultSpec::OneShot(Status::Internal("ignored")));
  // A write's fate would be unknown to a real client; auto-replay is unsafe,
  // so the typed error surfaces to the application.
  auto ins = driver->Query("INSERT INTO T (id) VALUES (@i)",
                           {{"i", Value::Int32(1)}});
  ASSERT_FALSE(ins.ok());
  EXPECT_EQ(ins.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(driver->retries(), 0);
}

TEST_F(NetFaultTest, DropMidFrameTriggersReconnectAndSelectReplay) {
  auto driver = MakeSocketDriver();
  ASSERT_TRUE(driver);
  ASSERT_TRUE(driver->ExecuteDdl("CREATE TABLE T (id INT)").ok());
  ASSERT_TRUE(driver
                  ->Query("INSERT INTO T (id) VALUES (@i)",
                          {{"i", Value::Int32(5)}})
                  .ok());

  // The server writes half the response frame and hangs up; the client sees
  // a mid-frame disconnect, poisons the transport, reconnects via the
  // factory, and replays the (read-only) statement.
  FaultRegistry::Global().Arm("net/drop_mid_frame",
                              FaultSpec::OneShot(Status::Internal("drop")));
  auto rs = driver->Query("SELECT id FROM T");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(FaultRegistry::Global().fires("net/drop_mid_frame"), 1u);
  EXPECT_GE(driver->retries(), 1);
  EXPECT_EQ(driver->reconnects(), 1);
}

TEST_F(NetFaultTest, HandshakeStallHitsClientReadTimeout) {
  FaultSpec spec = FaultSpec::OneShot(Status::Internal("stall"));
  spec.arg = 500;  // ms; client timeout below is 100ms
  FaultRegistry::Global().Arm("net/handshake_stall", spec);
  net::SocketTransport::Options topts;
  topts.port = server_->port();
  topts.timeout_ms = 100;
  auto t = net::SocketTransport::Connect(topts);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(FaultRegistry::Global().fires("net/handshake_stall"), 1u);
  // The server survives; a patient client connects fine afterwards.
  topts.timeout_ms = 5000;
  EXPECT_TRUE(net::SocketTransport::Connect(topts).ok());
}

TEST_F(NetFaultTest, EnclaveRestartReattestsTransparentlyOnAutoCommitQuery) {
  auto driver = MakeSocketDriver();
  ASSERT_TRUE(driver);
  ASSERT_TRUE(driver
                  ->ProvisionCmk("FCMK", vault_->name(), kVaultPath,
                                 /*enclave_enabled=*/true)
                  .ok());
  ASSERT_TRUE(driver->ProvisionCek("FCEK", "FCMK").ok());
  ASSERT_TRUE(driver
                  ->ExecuteDdl(
                      "CREATE TABLE Vault (id INT, "
                      "memo VARCHAR(32) ENCRYPTED WITH ("
                      "COLUMN_ENCRYPTION_KEY = FCEK, "
                      "ENCRYPTION_TYPE = Randomized, "
                      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))")
                  .ok());
  auto ins = driver->Query("INSERT INTO Vault (id, memo) VALUES (@i, @m)",
                           {{"i", Value::Int32(1)},
                            {"m", Value::String("top-secret-alpha")}});
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  // The RND LIKE predicate runs inside the enclave: session + CEKs are live.
  auto warm = driver->Query("SELECT id FROM Vault WHERE memo LIKE @p",
                            {{"p", Value::String("top-%")}});
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(driver->attestations(), 1);

  // Kill the enclave state right before the next statement executes.
  FaultRegistry::Global().Arm(
      "server/enclave_restart",
      FaultSpec::OneShot(Status::Internal("restart")));
  auto rs = driver->Query("SELECT id FROM Vault WHERE memo LIKE @p",
                          {{"p", Value::String("top-%")}});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].i32(), 1);

  // Exactly one restart fired; the driver re-attested exactly once and
  // replayed; the server observed both the re-attestation and the
  // retry-stamped frame.
  EXPECT_EQ(FaultRegistry::Global().fires("server/enclave_restart"), 1u);
  EXPECT_EQ(driver->attestations(), 2);
  EXPECT_GE(driver->retries(), 1);
  EXPECT_EQ(server_->stats().sessions_attested.load(), 2u);
  EXPECT_GE(server_->stats().retries_seen.load(), 1u);
}

TEST_F(NetFaultTest, SessionEvictionMidStreamRecoversLikeRestart) {
  auto driver = MakeSocketDriver();
  ASSERT_TRUE(driver);
  ASSERT_TRUE(driver
                  ->ProvisionCmk("ECMK", vault_->name(), kVaultPath,
                                 /*enclave_enabled=*/true)
                  .ok());
  ASSERT_TRUE(driver->ProvisionCek("ECEK", "ECMK").ok());
  ASSERT_TRUE(driver
                  ->ExecuteDdl(
                      "CREATE TABLE S (id INT, "
                      "v VARCHAR(16) ENCRYPTED WITH ("
                      "COLUMN_ENCRYPTION_KEY = ECEK, "
                      "ENCRYPTION_TYPE = Randomized, "
                      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))")
                  .ok());
  ASSERT_TRUE(driver
                  ->Query("INSERT INTO S (id, v) VALUES (@i, @v)",
                          {{"i", Value::Int32(1)}, {"v", Value::String("x")}})
                  .ok());
  // INSERT encrypts client-side and never touches the enclave; a LIKE over
  // the randomized column is what forces the first attestation.
  auto warm = driver->Query("SELECT id FROM S WHERE v LIKE @p",
                            {{"p", Value::String("x%")}});
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(driver->attestations(), 1);

  // Evict the session at the next enclave session lookup, which (after the
  // driver drops its cached session) is the CEK install for the new session:
  // the driver must see the typed kSessionNotFound, re-attest AGAIN, and
  // replay — the statement never half-runs under a dead session.
  FaultRegistry::Global().Arm(
      "enclave/evict_session",
      FaultSpec::OneShot(Status::Internal("ignored")));
  driver->InvalidateSession();
  auto rs = driver->Query("SELECT id FROM S WHERE v LIKE @p",
                          {{"p", Value::String("x%")}});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(FaultRegistry::Global().fires("enclave/evict_session"), 1u);
  // Attest #2 minted the session that got evicted; attest #3 recovered it.
  EXPECT_EQ(driver->attestations(), 3);
  EXPECT_GE(driver->retries(), 1);
}

// ===========================================================================
// The headline test: enclave restart in the middle of TPC-C over a socket
// ===========================================================================

TEST_F(NetFaultTest, TpccSurvivesEnclaveRestartMidWorkloadOverSocket) {
  tpcc::TpccConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 8;
  config.items = 30;
  config.initial_orders_per_district = 3;
  config.encryption = tpcc::Encryption::kRandomized;
  config.cek_name = "TpccCEK";

  auto loader_driver = MakeInProcessDriver();
  ASSERT_TRUE(loader_driver);
  ASSERT_TRUE(loader_driver
                  ->ProvisionCmk("TpccCMK", vault_->name(), kVaultPath,
                                 /*enclave_enabled=*/true)
                  .ok());
  ASSERT_TRUE(loader_driver->ProvisionCek("TpccCEK", "TpccCMK").ok());
  tpcc::TpccLoader loader(loader_driver.get(), config);
  ASSERT_TRUE(loader.CreateSchema().ok());
  ASSERT_TRUE(loader.Load().ok());

  auto driver = MakeSocketDriver();
  ASSERT_TRUE(driver);
  tpcc::TpccTerminal terminal(driver.get(), config, /*seed=*/11);
  // Warm-up until an enclave-requiring statement has run (RND last-name
  // lookup): attests, installs CEKs, fills describe caches.
  for (int i = 0; i < 60 && driver->attestations() == 0; ++i) {
    Status st = terminal.RunOne();
    ASSERT_TRUE(st.ok()) << "warmup txn " << i << ": " << st.ToString();
  }
  ASSERT_EQ(driver->attestations(), 1);
  uint64_t warm_committed = terminal.committed();

  // Restart the enclave under the running workload: the in-flight transaction
  // surfaces kTransactionAborted, the terminal restarts it, and the restarted
  // transaction re-attests + re-installs CEKs through the recovery path. Run
  // until the re-attestation has demonstrably happened (bounded).
  FaultRegistry::Global().Arm(
      "server/enclave_restart",
      FaultSpec::OneShot(Status::Internal("restart")));
  int post = 0;
  for (; post < 120 && !(driver->attestations() >= 2 && post >= 10); ++post) {
    Status st = terminal.RunOne();
    ASSERT_TRUE(st.ok()) << "txn " << post << ": " << st.ToString();
  }
  EXPECT_GT(terminal.committed(), warm_committed);

  // Exactly one restart; exactly one re-attestation + key re-install; the
  // recovery was visible (a transaction restarted), never a wrong result.
  EXPECT_EQ(FaultRegistry::Global().fires("server/enclave_restart"), 1u);
  EXPECT_EQ(driver->attestations(), 2);
  EXPECT_GE(terminal.restarts(), 1u);
  EXPECT_EQ(server_->stats().sessions_attested.load(), 2u);

  // Consistency spot-check against the in-process view: both paths must see
  // identical district counters.
  for (int d = 1; d <= config.districts_per_warehouse; ++d) {
    auto over_socket = driver->Query(
        "SELECT D_NEXT_O_ID FROM District WHERE D_W_ID = @w AND D_ID = @d",
        {{"w", Value::Int32(1)}, {"d", Value::Int32(d)}});
    auto in_process = loader_driver->Query(
        "SELECT D_NEXT_O_ID FROM District WHERE D_W_ID = @w AND D_ID = @d",
        {{"w", Value::Int32(1)}, {"d", Value::Int32(d)}});
    ASSERT_TRUE(over_socket.ok());
    ASSERT_TRUE(in_process.ok());
    ASSERT_EQ(over_socket->rows.size(), 1u);
    EXPECT_TRUE(over_socket->rows[0][0] == in_process->rows[0][0]);
  }

  // The ciphertext-only invariant held through the whole fault + recovery
  // dance: customer PII never hits a page in plaintext.
  bool leaked = false;
  db_->engine().ForEachPageRaw([&](uint32_t, Slice page) {
    std::string_view h(reinterpret_cast<const char*>(page.data()),
                       page.size());
    if (h.find("BARBARBAR") != std::string_view::npos) leaked = true;
  });
  EXPECT_FALSE(leaked);
}

}  // namespace
}  // namespace aedb
