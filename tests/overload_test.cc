// End-to-end deadlines, cancellation and overload control (the robustness
// PR's test surface):
//
//   - lock waits bounded by the query deadline, not the global lock_timeout,
//   - the enclave worker pool shedding expired morsels without paying
//     transitions, and rejecting typed when its queue is full,
//   - the Database admission gate (typed kOverloaded + retry-after hint),
//   - deadline propagation over the wire protocol,
//   - connection-cap rejection and stalled-client eviction in net::Server,
//   - a 4x-overload stress run proving graceful degradation: goodput holds,
//     every shed query is typed, and no wrong results escape.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "client/driver.h"
#include "common/query_context.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "enclave/worker_pool.h"
#include "fault/fault.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "server/database.h"
#include "storage/lock_manager.h"

namespace aedb {
namespace {

using client::Driver;
using client::DriverOptions;
using types::TypeId;
using types::Value;
using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// ===========================================================================
// Lock manager: deadline-aware waits
// ===========================================================================

TEST(LockDeadline, NearExpiredDeadlineReturnsWithinBudgetNotLockTimeout) {
  storage::LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, 77, std::chrono::milliseconds(0)).ok());

  // Waiter carries a 50 ms budget against a 5 s lock timeout: it must give
  // up when the *query* deadline passes, typed kDeadlineExceeded.
  QueryContext q = QueryContext::WithDeadlineAfter(std::chrono::milliseconds(50));
  auto t0 = Clock::now();
  Status st = locks.Acquire(2, 77, std::chrono::milliseconds(5000), &q);
  double elapsed = ElapsedMs(t0);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_LT(elapsed, 2000.0) << "waiter slept past its deadline budget";
  EXPECT_EQ(locks.waits_expired(), 1u);
}

TEST(LockDeadline, CancelledQueryNeverEntersTheWait) {
  storage::LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, 5, std::chrono::milliseconds(0)).ok());
  QueryContext q;
  q.Cancel();
  auto t0 = Clock::now();
  Status st = locks.Acquire(2, 5, std::chrono::milliseconds(5000), &q);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_LT(ElapsedMs(t0), 1000.0);
  EXPECT_EQ(locks.waits_expired(), 1u);
}

TEST(LockDeadline, CancelWakesWaiterLongBeforeLockTimeout) {
  storage::LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, 42, std::chrono::milliseconds(0)).ok());
  // No deadline: only Cancel() can end this wait early. Cancel() just flips
  // an atomic — the lock manager must observe it promptly on its own instead
  // of sleeping out the full 10 s timeout.
  QueryContext q;
  Status st;
  auto t0 = Clock::now();
  std::thread waiter([&] {
    st = locks.Acquire(2, 42, std::chrono::milliseconds(10000), &q);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  q.Cancel();
  waiter.join();
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_LT(ElapsedMs(t0), 2000.0) << "Cancel() did not wake the lock wait";
  EXPECT_EQ(locks.waits_expired(), 1u);
}

TEST(LockDeadline, NoContextKeepsTimeoutTaxonomy) {
  storage::LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, 9, std::chrono::milliseconds(0)).ok());
  // Without a query context the old contract holds: FailedPrecondition
  // (possible deadlock), the signal TPC-C treats as ordinary contention.
  Status st = locks.Acquire(2, 9, std::chrono::milliseconds(20));
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.ToString();
  EXPECT_EQ(locks.waits_expired(), 0u);
}

// ===========================================================================
// Enclave worker pool: bounded queue + expired-morsel shedding
// ===========================================================================

class PoolOverloadTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kCekId = 7;

  void SetUp() override {
    fault::FaultRegistry::Global().Reset();
    crypto::HmacDrbg author_drbg(crypto::SecureRandom(48),
                                 Slice(std::string_view("pool-author")));
    author_key_ = crypto::GenerateRsaKey(1024, &author_drbg);
    platform_ = std::make_unique<enclave::VbsPlatform>("known-good-boot", 2);
    image_ = enclave::EnclaveImage::MakeEsImage(3, author_key_);
    auto loaded = platform_->LoadEnclave(image_, enclave::EnclaveConfig{});
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    enclave_ = std::move(loaded).value();
    cek_ = crypto::SecureRandom(32);

    // Driver side: session + CEK install so registered programs can eval.
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("pool-client-dh")));
    client_dh_ = crypto::GenerateDhKeyPair(&drbg);
    auto resp = enclave_->CreateSession(crypto::DhPublicKeyBytes(client_dh_));
    ASSERT_TRUE(resp.ok());
    session_id_ = resp->session_id;
    auto secret = crypto::DhComputeSharedSecret(client_dh_.private_key,
                                                resp->enclave_dh_public);
    ASSERT_TRUE(secret.ok());
    channel_ = std::make_unique<crypto::CellCodec>(*secret);
    Bytes plain;
    PutU64(&plain, 0);
    PutU32(&plain, 1);
    PutU32(&plain, kCekId);
    PutLengthPrefixed(&plain, cek_);
    ASSERT_TRUE(enclave_
                    ->InstallCeks(session_id_, 0,
                                  channel_->Encrypt(
                                      plain,
                                      crypto::EncryptionScheme::kRandomized))
                    .ok());

    es::EsProgram p;
    p.GetData(0, TypeId::kInt64, Rnd());
    p.GetData(1, TypeId::kInt64, Rnd());
    p.Comp(es::CompareOp::kLt);
    p.SetData(0, TypeId::kBool);
    auto handle = enclave_->RegisterExpression(p.Serialize());
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handle_ = *handle;
  }

  void TearDown() override { fault::FaultRegistry::Global().DisarmAll(); }

  types::EncryptionType Rnd() {
    return types::EncryptionType::Encrypted(types::EncKind::kRandomized,
                                            kCekId, true);
  }
  Bytes Cell(const Value& v) {
    crypto::CellCodec codec(cek_);
    return codec.Encrypt(v.Encode(), crypto::EncryptionScheme::kRandomized);
  }
  std::vector<Value> Inputs(int64_t a, int64_t b) {
    return {Value::Binary(Cell(Value::Int64(a))),
            Value::Binary(Cell(Value::Int64(b)))};
  }

  crypto::RsaPrivateKey author_key_;
  std::unique_ptr<enclave::VbsPlatform> platform_;
  enclave::EnclaveImage image_;
  std::unique_ptr<enclave::Enclave> enclave_;
  Bytes cek_;
  crypto::DhKeyPair client_dh_;
  std::unique_ptr<crypto::CellCodec> channel_;
  uint64_t session_id_ = 0;
  uint64_t handle_ = 0;
};

TEST_F(PoolOverloadTest, ExpiredMorselDroppedWithoutEnclaveTransition) {
  enclave::EnclaveWorkerPool::Options opts;
  opts.num_threads = 1;
  opts.spin_duration_us = 0;  // sleep immediately once the queue drains
  enclave::EnclaveWorkerPool pool(enclave_.get(), opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // worker asleep

  uint64_t wakeups0 = pool.wakeups();
  uint64_t evals0 = enclave_->stats().evals.load();
  // Deadline already in the past: the sleeping worker must shed it *before*
  // re-entering the enclave (it is outside while asleep), so no transition
  // and no eval are ever paid for this morsel.
  auto r = pool.SubmitEval(handle_, Inputs(1, 2), 0, {},
                           Clock::now() - std::chrono::milliseconds(1));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  EXPECT_EQ(pool.expired_dropped(), 1u);
  EXPECT_EQ(pool.wakeups(), wakeups0) << "expired morsel paid a transition";
  EXPECT_EQ(enclave_->stats().evals.load(), evals0);

  // A live morsel afterwards still evaluates (the pool is healthy).
  auto ok = pool.SubmitEval(handle_, Inputs(1, 2));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE((*ok)[0].bool_v());
}

TEST_F(PoolOverloadTest, FullQueueRejectsTypedOverloaded) {
  enclave::EnclaveWorkerPool::Options opts;
  opts.num_threads = 1;
  opts.spin_duration_us = 0;
  opts.max_queue_depth = 2;
  enclave::EnclaveWorkerPool pool(enclave_.get(), opts);

  // Stall the single worker inside the enclave so submissions back up.
  fault::FaultSpec stall = fault::FaultSpec::Always(Status::OK());
  stall.arg = 200;  // ms per item
  fault::ScopedFault scoped("pool/worker_stall", stall);

  std::vector<std::thread> waiters;
  std::atomic<int> ok_count{0};
  // First submission is picked up by the (stalling) worker; two more fill
  // the bounded queue.
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      auto r = pool.SubmitEval(handle_, Inputs(1, 2));
      if (r.ok()) ok_count.fetch_add(1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Queue is now full: this submission must be rejected immediately, typed.
  auto t0 = Clock::now();
  auto r = pool.SubmitEval(handle_, Inputs(3, 4));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOverloaded()) << r.status().ToString();
  EXPECT_LT(ElapsedMs(t0), 150.0) << "rejection was not fail-fast";
  EXPECT_GE(pool.overload_rejected(), 1u);
  EXPECT_EQ(pool.queue_highwater(), 2u);

  for (auto& w : waiters) w.join();
  EXPECT_EQ(ok_count.load(), 3) << "queued work was lost, not just delayed";
}

TEST_F(PoolOverloadTest, ShedOldestExpiredMakesRoomWhenFull) {
  enclave::EnclaveWorkerPool::Options opts;
  opts.num_threads = 1;
  opts.spin_duration_us = 0;
  opts.max_queue_depth = 1;
  enclave::EnclaveWorkerPool pool(enclave_.get(), opts);

  fault::FaultSpec stall = fault::FaultSpec::Always(Status::OK());
  stall.arg = 250;
  fault::ScopedFault scoped("pool/worker_stall", stall);

  // Item A occupies the worker; item B (tiny budget) fills the queue and
  // expires while waiting.
  std::thread a([&] { (void)pool.SubmitEval(handle_, Inputs(1, 2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status b_status;
  std::thread b([&] {
    auto r = pool.SubmitEval(handle_, Inputs(1, 2), 0, {},
                             Clock::now() + std::chrono::milliseconds(5));
    b_status = r.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Queue is full (B) but B has expired: shed-oldest-expired makes room and
  // C is accepted instead of rejected.
  auto c = pool.SubmitEval(handle_, Inputs(1, 2));
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  a.join();
  b.join();
  EXPECT_TRUE(b_status.IsDeadlineExceeded()) << b_status.ToString();
  EXPECT_GE(pool.expired_dropped(), 1u);
}

// ===========================================================================
// Database: admission gate, deadline stamping
// ===========================================================================

class DbOverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Global().Reset();
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("overload-author")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
    hgs_ = std::make_unique<attestation::HostGuardianService>();
  }

  void TearDown() override { fault::FaultRegistry::Global().DisarmAll(); }

  std::unique_ptr<server::Database> MakeDb(server::ServerOptions opts) {
    auto db = std::make_unique<server::Database>(opts, hgs_.get(), &image_);
    hgs_->RegisterTcgLog(db->platform()->tcg_log());
    return db;
  }

  static void LoadSmallTable(server::Database* db, int rows) {
    ASSERT_TRUE(
        db->ExecuteDdl("CREATE TABLE T (a INT NOT NULL, b INT)").ok());
    ASSERT_TRUE(db->ExecuteDdl("CREATE INDEX T_A ON T (a)").ok());
    for (int i = 0; i < rows; ++i) {
      auto r = db->Execute("INSERT INTO T (a, b) VALUES (@a, @b)",
                           {Value::Int32(i), Value::Int32(2 * i)});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }

  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
};

TEST_F(DbOverloadTest, AdmissionRejectFaultPointCarriesRetryAfterHint) {
  server::ServerOptions opts;
  opts.overload_retry_after_ms = 35;
  auto db = MakeDb(opts);
  LoadSmallTable(db.get(), 3);

  fault::ScopedFault scoped("server/admission_reject",
                            fault::FaultSpec::OneShot(Status::OK()));
  auto r = db->Execute("SELECT b FROM T WHERE a = @a", {Value::Int32(1)});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOverloaded()) << r.status().ToString();
  EXPECT_EQ(RetryAfterMsFromMessage(r.status().message()), 35u)
      << r.status().message();
  EXPECT_EQ(db->Stats().queries_rejected, 1u);

  // One-shot: the next query is admitted normally.
  auto ok = db->Execute("SELECT b FROM T WHERE a = @a", {Value::Int32(1)});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows[0][0].i32(), 2);
}

TEST_F(DbOverloadTest, NamedAdmissionRejectsBeforeParseAndBind) {
  auto db = MakeDb(server::ServerOptions{});
  // Deliberately unparseable text: if the admission gate runs first (as it
  // must — a shed query should cost no parser/binder work), the reject wins
  // over the parse error.
  {
    fault::ScopedFault scoped("server/admission_reject",
                              fault::FaultSpec::OneShot(Status::OK()));
    auto r = db->ExecuteNamed("THIS IS NOT SQL", {});
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsOverloaded()) << r.status().ToString();
    EXPECT_EQ(db->Stats().queries_rejected, 1u);
  }
  // Un-shed, the same text reaches the parser and fails on its own merits.
  auto r = db->ExecuteNamed("THIS IS NOT SQL", {});
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.status().IsOverloaded()) << r.status().ToString();
}

TEST_F(DbOverloadTest, AdmissionGateBoundsInflightQueries) {
  server::ServerOptions opts;
  opts.max_inflight_queries = 1;
  opts.simulated_network_us = 150'000;  // each query in flight >= 150 ms
  auto db = MakeDb(opts);
  {
    // Setup runs before the clock matters; the simulated network just makes
    // these slow, not wrong.
    auto r = db->ExecuteDdl("CREATE TABLE T (a INT NOT NULL, b INT)");
    ASSERT_TRUE(r.ok());
    auto ins = db->Execute("INSERT INTO T (a, b) VALUES (1, 2)", {});
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  }

  std::thread busy([&] {
    auto r = db->Execute("SELECT b FROM T WHERE a = 1", {});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // The gate sees one query already in flight: reject fast, typed, hinted.
  auto t0 = Clock::now();
  auto r = db->Execute("SELECT b FROM T WHERE a = 1", {});
  double elapsed = ElapsedMs(t0);
  busy.join();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOverloaded()) << r.status().ToString();
  EXPECT_GT(RetryAfterMsFromMessage(r.status().message()), 0u);
  EXPECT_LT(elapsed, 100.0) << "rejection paid the simulated network";
  auto stats = db->Stats();
  EXPECT_EQ(stats.queries_rejected, 1u);
  EXPECT_GE(stats.queries_admitted, 1u);
}

TEST_F(DbOverloadTest, DeadlineConsumedByNetworkExpiresBeforeExecution) {
  server::ServerOptions opts;
  opts.simulated_network_us = 20'000;  // 20 ms round trip
  auto db = MakeDb(opts);
  LoadSmallTable(db.get(), 2);

  uint64_t transitions0 = db->Stats().enclave_transitions;
  auto r = db->Execute("SELECT b FROM T WHERE a = @a", {Value::Int32(1)},
                       /*txn=*/0, /*session_id=*/0, /*deadline_ms=*/1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  auto stats = db->Stats();
  EXPECT_GE(stats.queries_expired, 1u);
  // The budget died in the (simulated) network: execution never started and
  // the enclave was never entered for this query.
  EXPECT_EQ(stats.enclave_transitions, transitions0);
}

TEST_F(DbOverloadTest, LockWaitBoundedByQueryDeadlineEndToEnd) {
  server::ServerOptions opts;
  opts.engine.lock_timeout = std::chrono::milliseconds(5000);
  auto db = MakeDb(opts);
  LoadSmallTable(db.get(), 3);

  uint64_t txn = db->BeginTransaction();
  auto hold = db->Execute("UPDATE T SET b = 9 WHERE a = 1", {}, txn);
  ASSERT_TRUE(hold.ok()) << hold.status().ToString();

  // Autocommit writer with a 100 ms budget against a 5 s lock timeout.
  auto t0 = Clock::now();
  auto r = db->Execute("UPDATE T SET b = 8 WHERE a = 1", {}, /*txn=*/0,
                       /*session_id=*/0, /*deadline_ms=*/100);
  double elapsed = ElapsedMs(t0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  EXPECT_LT(elapsed, 2500.0) << "lock wait ignored the query deadline";
  auto stats = db->Stats();
  EXPECT_GE(stats.lock_waits_expired, 1u);
  EXPECT_GE(stats.queries_expired, 1u);
  ASSERT_TRUE(db->RollbackTransaction(txn).ok());
  // The row is untouched by the expired writer.
  auto check = db->Execute("SELECT b FROM T WHERE a = 1", {});
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows[0][0].i32(), 2);
}

// ===========================================================================
// Mid-statement pool overload vs. transaction integrity
// ===========================================================================

/// Full AE deployment (vault, CMK/CEK, enclave worker pool). The
/// executor/write_shed fault point models overload striking *between* the
/// rows of one write statement — after earlier rows are applied — while
/// pool/queue_full models the pre-write shed of a predicate morsel, where
/// nothing has been applied yet. The pair proves the server's partial-write
/// distinction.
class EncryptedTxnOverloadTest : public ::testing::Test {
 protected:
  static constexpr const char* kVaultPath = "kv/txn-overload";

  void SetUp() override {
    fault::FaultRegistry::Global().Reset();
    vault_ = std::make_unique<keys::InMemoryKeyVault>();
    ASSERT_TRUE(vault_->CreateKey(kVaultPath, 1024).ok());
    ASSERT_TRUE(registry_.Register(vault_.get()).ok());

    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("txn-overload-author")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
    hgs_ = std::make_unique<attestation::HostGuardianService>();

    server::ServerOptions opts;
    opts.enclave_worker_threads = 1;  // expression eval rides the pool
    db_ = std::make_unique<server::Database>(opts, hgs_.get(), &image_);
    hgs_->RegisterTcgLog(db_->platform()->tcg_log());

    client::DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    dopts.retry.base_backoff = std::chrono::milliseconds(0);
    dopts.retry.max_backoff = std::chrono::milliseconds(0);
    driver_ = std::make_unique<Driver>(db_.get(), &registry_,
                                       hgs_->signing_public(), dopts);

    ASSERT_TRUE(driver_
                    ->ProvisionCmk("CMK", vault_->name(), kVaultPath,
                                   /*enclave_enabled=*/true)
                    .ok());
    ASSERT_TRUE(driver_->ProvisionCek("CEK", "CMK").ok());
    Status st = driver_->ExecuteDdl(
        "CREATE TABLE Acct (id INT NOT NULL, cnt BIGINT, hot BOOL,"
        "  bal BIGINT ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK,"
        "    ENCRYPTION_TYPE = Randomized,"
        "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))");
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (int i = 1; i <= 3; ++i) {
      auto r = driver_->Query(
          "INSERT INTO Acct (id, cnt, hot, bal) VALUES (@i, @c, @h, @b)",
          {{"i", Value::Int32(i)},
           {"c", Value::Int64(0)},
           {"h", Value::Bool(false)},
           {"b", Value::Int64(100 * i)}});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }

  void TearDown() override { fault::FaultRegistry::Global().DisarmAll(); }

  int64_t Count(int id) {
    auto r = driver_->Query("SELECT cnt FROM Acct WHERE id = @i",
                            {{"i", Value::Int32(id)}});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok() || r->rows.size() != 1) return -1;
    return r->rows[0][0].i64();
  }

  /// Arms executor/write_shed to let row 1 of a write loop through and shed
  /// at the row-2 boundary: row 1 is already applied when the statement dies
  /// with the same kOverloaded the pool emits when its queue is full.
  static void ArmMidStatementShed() {
    fault::FaultSpec spec = fault::FaultSpec::OneShot(
        Status::Overloaded("enclave worker queue full (injected)"));
    spec.skip = 1;
    fault::FaultRegistry::Global().Arm("executor/write_shed", spec);
  }

  std::unique_ptr<keys::InMemoryKeyVault> vault_;
  keys::KeyProviderRegistry registry_;
  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<server::Database> db_;
  std::unique_ptr<Driver> driver_;
};

TEST_F(EncryptedTxnOverloadTest,
       MidStatementOverloadInExplicitTxnAbortsInsteadOfReplaying) {
  uint64_t txn = driver_->Begin();
  ArmMidStatementShed();
  // Non-idempotent write: `cnt = cnt + 1` over all 3 rows. Shedding at the
  // row-2 boundary leaves row 1 already incremented inside the open
  // transaction; a silent replay would push row 1's cnt to 2. The server
  // must convert the mid-statement kOverloaded into kTransactionAborted so
  // the retry layer (which treats kOverloaded as provably-without-effect)
  // never replays it.
  auto r = driver_->Query("UPDATE Acct SET cnt = cnt + 1", {}, txn);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTransactionAborted()) << r.status().ToString();
  EXPECT_EQ(fault::FaultRegistry::Global().fires("executor/write_shed"), 1u);
  EXPECT_EQ(driver_->retries(), 0) << "partial write was silently replayed";
  (void)driver_->Rollback(txn);  // server already aborted; app-level cleanup

  // The application contract: restart the transaction, it applies once.
  uint64_t txn2 = driver_->Begin();
  auto r2 = driver_->Query("UPDATE Acct SET cnt = cnt + 1", {}, txn2);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_TRUE(driver_->Commit(txn2).ok());
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(Count(i), 1) << "double/zero apply on row " << i;
  }
}

TEST_F(EncryptedTxnOverloadTest, AutocommitMidStatementOverloadReplaysCleanly) {
  ArmMidStatementShed();
  // Autocommit: the server aborts its internal transaction, so the partial
  // first attempt leaves no trace and the driver's transparent backoff-retry
  // of kOverloaded is safe — the statement lands exactly once.
  auto r = driver_->Query("UPDATE Acct SET cnt = cnt + 1", {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(driver_->retries(), 1);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(Count(i), 1) << "double/zero apply on row " << i;
  }
}

TEST_F(EncryptedTxnOverloadTest, PreWriteShedInExplicitTxnReplaysSafely) {
  uint64_t txn = driver_->Begin();
  // The complementary case: the pool rejects the encrypted WHERE predicate's
  // morsel BEFORE the write loop touches any row. No op was logged, so the
  // server lets kOverloaded pass through and the driver replays it
  // transparently — even inside the explicit transaction.
  fault::FaultRegistry::Global().Arm(
      "pool/queue_full", fault::FaultSpec::OneShot(Status::OK()));
  auto r = driver_->Query("UPDATE Acct SET cnt = cnt + 1 WHERE bal > @min",
                          {{"min", Value::Int64(150)}}, txn);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(fault::FaultRegistry::Global().fires("pool/queue_full"), 1u);
  EXPECT_GE(driver_->retries(), 1) << "pre-write shed should replay, not fail";
  ASSERT_TRUE(driver_->Commit(txn).ok());
  EXPECT_EQ(Count(1), 0);  // bal=100, predicate false
  EXPECT_EQ(Count(2), 1);  // bal=200
  EXPECT_EQ(Count(3), 1);  // bal=300
}

// ===========================================================================
// Net server: connection caps, wire deadlines, stalled clients
// ===========================================================================

class NetOverloadTest : public DbOverloadTest {
 protected:
  void TearDown() override {
    if (server_) server_->Stop();
    DbOverloadTest::TearDown();
  }

  void StartServer(server::Database* db, net::ServerConfig config) {
    server_ = std::make_unique<net::Server>(db, config);
    ASSERT_TRUE(server_->Start().ok());
  }

  Result<std::unique_ptr<net::SocketTransport>> ConnectTransport() {
    net::SocketTransport::Options topts;
    topts.port = server_->port();
    topts.timeout_ms = 5000;
    return net::SocketTransport::Connect(topts);
  }

  std::unique_ptr<Driver> MakeSocketDriver(uint32_t deadline_ms = 0) {
    auto transport = ConnectTransport();
    if (!transport.ok()) return nullptr;
    DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    dopts.deadline_ms = deadline_ms;
    return std::make_unique<Driver>(std::move(transport).value(), &registry_,
                                    hgs_->signing_public(), dopts);
  }

  keys::KeyProviderRegistry registry_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(NetOverloadTest, MaxConnectionsRejectsTypedAndRecovers) {
  auto db = MakeDb(server::ServerOptions{});
  LoadSmallTable(db.get(), 2);
  net::ServerConfig config;
  config.max_connections = 2;
  config.overload_retry_after_ms = 15;
  StartServer(db.get(), config);

  auto t1 = ConnectTransport();
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  auto t2 = ConnectTransport();
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();

  // Connection 3 is over the cap: the server answers a typed kOverloaded
  // error frame (with a retry-after hint) instead of silently accepting.
  auto t3 = ConnectTransport();
  ASSERT_FALSE(t3.ok());
  EXPECT_TRUE(t3.status().IsOverloaded()) << t3.status().ToString();
  EXPECT_EQ(RetryAfterMsFromMessage(t3.status().message()), 15u);
  EXPECT_EQ(server_->stats().connections_rejected.load(), 1u);
  EXPECT_TRUE((*t1)->Ping().ok());  // existing sessions unaffected

  // Capacity freed: dropping one connection lets a new one in (possibly
  // after a short retry while the server notices the close).
  (*t2).reset();
  bool reconnected = false;
  for (int i = 0; i < 50 && !reconnected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto t4 = ConnectTransport();
    reconnected = t4.ok();
  }
  EXPECT_TRUE(reconnected) << "cap never released after a disconnect";
}

TEST_F(NetOverloadTest, AcceptRejectFaultPoint) {
  auto db = MakeDb(server::ServerOptions{});
  StartServer(db.get(), net::ServerConfig{});
  {
    fault::ScopedFault scoped("net/accept_reject",
                              fault::FaultSpec::OneShot(Status::OK()));
    auto t = ConnectTransport();
    ASSERT_FALSE(t.ok());
    EXPECT_TRUE(t.status().IsOverloaded()) << t.status().ToString();
  }
  auto t = ConnectTransport();
  EXPECT_TRUE(t.ok()) << t.status().ToString();
}

TEST_F(NetOverloadTest, WireDeadlineBoundsLockWaitAcrossTheSocket) {
  server::ServerOptions opts;
  opts.engine.lock_timeout = std::chrono::milliseconds(5000);
  auto db = MakeDb(opts);
  LoadSmallTable(db.get(), 3);
  StartServer(db.get(), net::ServerConfig{});

  // An in-process transaction pins the row; the socket client's 200 ms
  // budget must ride the Query frame and cut the server-side lock wait.
  uint64_t txn = db->BeginTransaction();
  auto hold = db->Execute("UPDATE T SET b = 9 WHERE a = 1", {}, txn);
  ASSERT_TRUE(hold.ok()) << hold.status().ToString();

  auto driver = MakeSocketDriver(/*deadline_ms=*/200);
  ASSERT_NE(driver, nullptr);
  auto t0 = Clock::now();
  auto r = driver->Query("UPDATE T SET b = 8 WHERE a = 1");
  double elapsed = ElapsedMs(t0);
  ASSERT_FALSE(r.ok());
  // kDeadlineExceeded is never replayed: exactly one attempt, typed return.
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  EXPECT_LT(elapsed, 2500.0) << "wire deadline did not bound the lock wait";
  EXPECT_GE(db->Stats().lock_waits_expired, 1u);
  ASSERT_TRUE(db->RollbackTransaction(txn).ok());
}

/// Minimal raw TCP client for byte-level misbehaviour.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    timeval tv{8, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(Slice data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t w =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  /// Drains until the server closes the stream; false on recv timeout.
  bool DrainToEof() {
    uint8_t buf[256];
    for (;;) {
      ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r == 0) return true;
      if (r < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST_F(NetOverloadTest, StalledClientEvictedWhileOthersProgress) {
  auto db = MakeDb(server::ServerOptions{});
  LoadSmallTable(db.get(), 2);
  net::ServerConfig config;
  config.read_timeout_ms = 500;
  StartServer(db.get(), config);

  // The stalled client: a valid handshake, then a frame header promising 64
  // payload bytes that never arrive. Its worker must not be held past
  // read_timeout_ms.
  RawConn stalled(server_->port());
  ASSERT_TRUE(stalled.connected());
  net::HandshakeReq hs;
  ASSERT_TRUE(
      stalled.Send(net::EncodeFrame(net::MsgType::kHandshake, hs.Encode())));
  Bytes partial = net::EncodeFrame(net::MsgType::kPing, Bytes(64));
  partial.resize(net::kFrameHeaderSize + 10);  // header + 10 of 64 bytes
  ASSERT_TRUE(stalled.Send(partial));

  // Healthy sessions keep executing while the stall is pending.
  auto driver = MakeSocketDriver();
  ASSERT_NE(driver, nullptr);
  int ok = 0;
  auto t0 = Clock::now();
  while (ElapsedMs(t0) < 700.0) {
    auto r = driver->Query("SELECT b FROM T WHERE a = @a",
                           {{"a", Value::Int32(1)}});
    if (r.ok()) ++ok;
  }
  EXPECT_GT(ok, 10) << "healthy session starved behind a stalled client";

  // The stalled connection is closed once its read times out (handshake ack
  // is drained here too; EOF is what matters).
  EXPECT_TRUE(stalled.DrainToEof()) << "stalled client still holds a worker";
}

TEST_F(NetOverloadTest, StreamingRejectedClientDoesNotStallAdmission) {
  auto db = MakeDb(server::ServerOptions{});
  net::ServerConfig config;
  config.max_connections = 1;
  config.overload_retry_after_ms = 10;
  StartServer(db.get(), config);

  auto t1 = ConnectTransport();
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();

  // A hostile reject-ee: connects over the cap and streams bytes for as long
  // as the server will take them. The reject drain must not follow the
  // stream indefinitely on the acceptor thread — that would freeze admission
  // exactly when the server is at its connection cap.
  std::atomic<bool> stop{false};
  std::thread attacker([&] {
    RawConn conn(server_->port());
    if (!conn.connected()) return;
    Bytes junk(1024, 0xAB);
    while (!stop.load() && conn.Send(junk)) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // While the attacker streams, a polite over-cap client still receives its
  // typed rejection promptly instead of queueing behind the drain.
  auto t0 = Clock::now();
  auto t2 = ConnectTransport();
  double elapsed = ElapsedMs(t0);
  stop.store(true);
  attacker.join();
  ASSERT_FALSE(t2.ok());
  EXPECT_TRUE(t2.status().IsOverloaded()) << t2.status().ToString();
  EXPECT_LT(elapsed, 2000.0) << "reject drain stalled the accept loop";
  EXPECT_GE(server_->stats().connections_rejected.load(), 2u);

  // The admitted session was never disturbed.
  EXPECT_TRUE((*t1)->Ping().ok());
}

// ===========================================================================
// The acceptance stress: 4x overload over real sockets
// ===========================================================================

struct StressCounts {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> overloaded{0};
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> other{0};
  std::atomic<uint64_t> wrong{0};
};

TEST_F(NetOverloadTest, FourTimesOverloadDegradesGracefully) {
  server::ServerOptions opts;
  opts.max_inflight_queries = 2;  // tiny capacity => 8 clients is 4x
  opts.overload_retry_after_ms = 2;
  auto db = MakeDb(opts);
  LoadSmallTable(db.get(), 50);
  net::ServerConfig config;
  config.max_connections = 32;
  StartServer(db.get(), config);

  // Baseline: one closed-loop client against the same deployment.
  uint64_t baseline = 0;
  {
    auto driver = MakeSocketDriver(/*deadline_ms=*/250);
    ASSERT_NE(driver, nullptr);
    auto t0 = Clock::now();
    while (ElapsedMs(t0) < 500.0) {
      auto r = driver->Query("SELECT b FROM T WHERE a = @a",
                             {{"a", Value::Int32(3)}});
      if (r.ok()) ++baseline;
    }
  }
  ASSERT_GT(baseline, 0u);
  double baseline_qps = static_cast<double>(baseline) / 0.5;

  // Overload: 8 closed-loop clients against an admission gate of 2.
  constexpr int kClients = 8;
  constexpr double kSeconds = 1.5;
  StressCounts counts;
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      auto driver = MakeSocketDriver(/*deadline_ms=*/250);
      if (!driver) return;
      uint64_t seed = 0x9e3779b97f4a7c15ull + t;
      auto t0 = Clock::now();
      while (ElapsedMs(t0) < kSeconds * 1000.0) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        int key = static_cast<int>((seed >> 33) % 50);
        auto r = driver->Query("SELECT b FROM T WHERE a = @a",
                               {{"a", Value::Int32(key)}});
        if (r.ok()) {
          bool valid = r->rows.size() == 1 && !r->rows[0][0].is_null() &&
                       r->rows[0][0].i32() == 2 * key;
          (valid ? counts.ok : counts.wrong).fetch_add(1);
        } else if (r.status().IsOverloaded()) {
          counts.overloaded.fetch_add(1);
        } else if (r.status().IsDeadlineExceeded()) {
          counts.deadline.fetch_add(1);
        } else {
          counts.other.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  double goodput_qps = static_cast<double>(counts.ok.load()) / kSeconds;
  // Graceful degradation, in order of importance: correct results only,
  // every shed query typed, and goodput holding near single-client capacity.
  EXPECT_EQ(counts.wrong.load(), 0u);
  EXPECT_EQ(counts.other.load(), 0u)
      << "untyped failures under overload";
  EXPECT_GE(goodput_qps, 0.7 * baseline_qps)
      << "goodput " << goodput_qps << " qps collapsed below 70% of baseline "
      << baseline_qps << " qps";
  // The server survived: a fresh connection still answers correctly.
  auto after = MakeSocketDriver();
  ASSERT_NE(after, nullptr);
  auto r = after->Query("SELECT b FROM T WHERE a = @a", {{"a", Value::Int32(7)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].i32(), 14);

  auto stats = db->Stats();
  EXPECT_GE(stats.queries_admitted, counts.ok.load());
  // The gate did real work at 4x (either rejections surfaced to clients or
  // were absorbed by typed backoff-retries).
  EXPECT_GT(stats.queries_rejected, 0u);
}

}  // namespace
}  // namespace aedb
