#include <gtest/gtest.h>

#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/sha256.h"
#include "enclave/enclave.h"
#include "enclave/nonce_tracker.h"
#include "enclave/worker_pool.h"

namespace aedb::enclave {
namespace {

using types::EncKind;
using types::EncryptionType;
using types::TypeId;
using types::Value;

TEST(NonceTrackerTest, SequentialStaysCompact) {
  NonceTracker t;
  for (uint64_t n = 0; n < 1000; ++n) {
    ASSERT_TRUE(t.CheckAndRecord(n).ok());
  }
  EXPECT_EQ(t.range_count(), 1u);
  EXPECT_EQ(t.recorded_count(), 1000u);
}

TEST(NonceTrackerTest, ReplayDetected) {
  NonceTracker t;
  ASSERT_TRUE(t.CheckAndRecord(5).ok());
  EXPECT_TRUE(t.CheckAndRecord(5).IsReplayDetected());
}

TEST(NonceTrackerTest, OutOfOrderMergesRanges) {
  NonceTracker t;
  // Local reordering: 0 2 1 4 3 6 5 ...
  for (uint64_t base = 0; base < 100; base += 2) {
    ASSERT_TRUE(t.CheckAndRecord(base == 0 ? 0 : base).ok());
    if (base > 0) ASSERT_TRUE(t.CheckAndRecord(base - 1).ok());
  }
  EXPECT_LE(t.range_count(), 2u);
  // Every recorded nonce replays.
  for (uint64_t n = 0; n < 99; ++n) {
    EXPECT_TRUE(t.CheckAndRecord(n).IsReplayDetected()) << n;
  }
}

TEST(NonceTrackerTest, SparseNoncesKeepSeparateRanges) {
  NonceTracker t;
  ASSERT_TRUE(t.CheckAndRecord(10).ok());
  ASSERT_TRUE(t.CheckAndRecord(20).ok());
  ASSERT_TRUE(t.CheckAndRecord(30).ok());
  EXPECT_EQ(t.range_count(), 3u);
  // Fill the gap 11..19 -> merges with both neighbors of 10 and 20.
  for (uint64_t n = 11; n <= 19; ++n) ASSERT_TRUE(t.CheckAndRecord(n).ok());
  EXPECT_EQ(t.range_count(), 2u);
  EXPECT_FALSE(t.Seen(25));
  EXPECT_TRUE(t.Seen(15));
}

TEST(NonceTrackerTest, ZeroBoundary) {
  NonceTracker t;
  ASSERT_TRUE(t.CheckAndRecord(0).ok());
  EXPECT_TRUE(t.CheckAndRecord(0).IsReplayDetected());
  ASSERT_TRUE(t.CheckAndRecord(1).ok());
  EXPECT_EQ(t.range_count(), 1u);
}

// ---------------------------------------------------------------------------

class EnclaveTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kCekId = 42;

  void SetUp() override {
    crypto::HmacDrbg author_drbg(crypto::SecureRandom(48),
                                 Slice(std::string_view("author")));
    author_key_ = crypto::GenerateRsaKey(1024, &author_drbg);
    platform_ = std::make_unique<VbsPlatform>("known-good-boot", 2);
    image_ = EnclaveImage::MakeEsImage(3, author_key_);
    auto loaded = platform_->LoadEnclave(image_, EnclaveConfig{});
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    enclave_ = std::move(loaded).value();
    cek_ = crypto::SecureRandom(32);
  }

  // Simulates the driver side: attest (create session) and install one CEK.
  uint64_t OpenSessionWithKey() {
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("client-dh")));
    client_dh_ = crypto::GenerateDhKeyPair(&drbg);
    auto resp = enclave_->CreateSession(crypto::DhPublicKeyBytes(client_dh_));
    EXPECT_TRUE(resp.ok());
    session_id_ = resp->session_id;
    auto secret = crypto::DhComputeSharedSecret(client_dh_.private_key,
                                                resp->enclave_dh_public);
    EXPECT_TRUE(secret.ok());
    channel_ = std::make_unique<crypto::CellCodec>(*secret);
    InstallCek(next_nonce_++, kCekId, cek_);
    return session_id_;
  }

  Bytes SealInstallPayload(uint64_t nonce, uint32_t cek_id, const Bytes& key) {
    Bytes plain;
    PutU64(&plain, nonce);
    PutU32(&plain, 1);
    PutU32(&plain, cek_id);
    PutLengthPrefixed(&plain, key);
    return channel_->Encrypt(plain, crypto::EncryptionScheme::kRandomized);
  }

  void InstallCek(uint64_t nonce, uint32_t cek_id, const Bytes& key) {
    Status st = enclave_->InstallCeks(session_id_, nonce,
                                      SealInstallPayload(nonce, cek_id, key));
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  Bytes Cell(const Value& v,
             crypto::EncryptionScheme scheme =
                 crypto::EncryptionScheme::kRandomized) {
    crypto::CellCodec codec(cek_);
    return codec.Encrypt(v.Encode(), scheme);
  }

  EncryptionType Rnd() {
    return EncryptionType::Encrypted(EncKind::kRandomized, kCekId, true);
  }

  crypto::RsaPrivateKey author_key_;
  std::unique_ptr<VbsPlatform> platform_;
  EnclaveImage image_;
  std::unique_ptr<Enclave> enclave_;
  Bytes cek_;
  crypto::DhKeyPair client_dh_;
  std::unique_ptr<crypto::CellCodec> channel_;
  uint64_t session_id_ = 0;
  uint64_t next_nonce_ = 0;
};

TEST_F(EnclaveTest, PlatformRejectsTamperedImage) {
  EnclaveImage bad = image_;
  bad.version = 99;  // hash no longer matches the author signature
  auto r = platform_->LoadEnclave(bad, EnclaveConfig{});
  EXPECT_TRUE(r.status().IsSecurityError());
}

TEST_F(EnclaveTest, ReportMatchesImage) {
  EXPECT_EQ(enclave_->report().binary_hash, image_.BinaryHash());
  EXPECT_EQ(enclave_->report().author_id, image_.AuthorId());
  EXPECT_EQ(enclave_->report().enclave_version, 3u);
  EXPECT_EQ(enclave_->report().platform_version, 2u);
}

TEST_F(EnclaveTest, SessionRejectsDegenerateDh) {
  Bytes one = crypto::BigNum(1).ToBytesBE(256);
  EXPECT_TRUE(enclave_->CreateSession(one).status().IsSecurityError());
}

TEST_F(EnclaveTest, InstallAndCompareCells) {
  OpenSessionWithKey();
  EXPECT_TRUE(enclave_->HasCek(kCekId));
  auto c = enclave_->CompareCells(kCekId, Cell(Value::Int64(5)),
                                  Cell(Value::Int64(9)));
  ASSERT_TRUE(c.ok());
  EXPECT_LT(*c, 0);
  auto c2 = enclave_->CompareCells(kCekId, Cell(Value::String("b")),
                                   Cell(Value::String("b")));
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(*c2, 0);
}

TEST_F(EnclaveTest, CompareCellsNullsSortFirst) {
  OpenSessionWithKey();
  auto c = enclave_->CompareCells(kCekId, Cell(Value::Null(TypeId::kInt64)),
                                  Cell(Value::Int64(-100)));
  ASSERT_TRUE(c.ok());
  EXPECT_LT(*c, 0);
}

TEST_F(EnclaveTest, CompareWithoutKeyFails) {
  auto c = enclave_->CompareCells(kCekId, Cell(Value::Int64(1)),
                                  Cell(Value::Int64(2)));
  EXPECT_TRUE(c.status().IsKeyNotInEnclave());
}

TEST_F(EnclaveTest, ReplayedInstallRejected) {
  OpenSessionWithKey();
  uint64_t used_nonce = next_nonce_ - 1;
  Status st = enclave_->InstallCeks(
      session_id_, used_nonce, SealInstallPayload(used_nonce, kCekId, cek_));
  EXPECT_TRUE(st.IsReplayDetected());
}

TEST_F(EnclaveTest, MismatchedOuterNonceRejected) {
  OpenSessionWithKey();
  // Outer nonce says 100, sealed payload says 99: SQL (the man in the middle)
  // cannot relabel messages.
  Status st = enclave_->InstallCeks(session_id_, 100,
                                    SealInstallPayload(99, kCekId, cek_));
  EXPECT_TRUE(st.IsSecurityError());
}

TEST_F(EnclaveTest, TamperedSealedPayloadRejected) {
  OpenSessionWithKey();
  Bytes sealed = SealInstallPayload(next_nonce_, kCekId, cek_);
  sealed[sealed.size() / 2] ^= 1;
  Status st = enclave_->InstallCeks(session_id_, next_nonce_, sealed);
  EXPECT_FALSE(st.ok());
}

TEST_F(EnclaveTest, EvalRegisteredExpression) {
  OpenSessionWithKey();
  es::EsProgram p;
  p.GetData(0, TypeId::kString, Rnd());
  p.GetData(1, TypeId::kString, Rnd());
  p.Comp(es::CompareOp::kEq);
  p.SetData(0, TypeId::kBool);
  auto handle = enclave_->RegisterExpression(p.Serialize());
  ASSERT_TRUE(handle.ok());
  auto r = enclave_->EvalRegistered(
      *handle, {Value::Binary(Cell(Value::String("SMITH"))),
                Value::Binary(Cell(Value::String("SMITH")))});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE((*r)[0].bool_v());
  EXPECT_GE(enclave_->stats().evals.load(), 1u);
}

TEST_F(EnclaveTest, EncryptOracleRequiresAuthorization) {
  OpenSessionWithKey();
  es::EsProgram p;
  p.GetData(0, TypeId::kInt64);
  p.SetData(0, TypeId::kInt64, Rnd());
  std::string ddl = "ALTER TABLE T ALTER COLUMN value ENCRYPTED";

  // Without client authorization: denied.
  auto r = enclave_->Eval(p.Serialize(), {Value::Int64(7)}, session_id_, ddl);
  EXPECT_TRUE(r.status().IsPermissionDenied()) << r.status().ToString();

  // Client signs the query hash into the session; now it runs.
  Bytes plain;
  PutU64(&plain, next_nonce_);
  Bytes hash = crypto::Sha256::Hash(Slice(std::string_view(ddl)));
  plain.insert(plain.end(), hash.begin(), hash.end());
  Status st = enclave_->AuthorizeEncryption(
      session_id_, next_nonce_,
      channel_->Encrypt(plain, crypto::EncryptionScheme::kRandomized));
  ++next_nonce_;
  ASSERT_TRUE(st.ok()) << st.ToString();

  auto r2 = enclave_->Eval(p.Serialize(), {Value::Int64(7)}, session_id_, ddl);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  // Round trip: the produced cell decrypts to the input under the CEK.
  crypto::CellCodec codec(cek_);
  auto back = codec.Decrypt((*r2)[0].bin());
  ASSERT_TRUE(back.ok());
  size_t off = 0;
  EXPECT_TRUE(*Value::Decode(*back, &off) == Value::Int64(7));

  // A *different* query text is still denied.
  auto r3 = enclave_->Eval(p.Serialize(), {Value::Int64(7)}, session_id_,
                           "ALTER TABLE Other ...");
  EXPECT_TRUE(r3.status().IsPermissionDenied());
}

TEST_F(EnclaveTest, ClearKeysSimulatesRestart) {
  OpenSessionWithKey();
  EXPECT_TRUE(enclave_->HasCek(kCekId));
  enclave_->ClearKeys();
  EXPECT_FALSE(enclave_->HasCek(kCekId));
  auto c = enclave_->CompareCells(kCekId, Cell(Value::Int64(1)),
                                  Cell(Value::Int64(2)));
  EXPECT_TRUE(c.status().IsKeyNotInEnclave());
}

TEST_F(EnclaveTest, NestedTMEvalRejected) {
  OpenSessionWithKey();
  es::EsProgram inner;
  inner.Const(Value::Int32(1));
  inner.SetData(0, TypeId::kInt32);
  es::EsProgram outer;
  outer.TMEval(inner, 0, 1);
  outer.SetData(0, TypeId::kInt32);
  EXPECT_TRUE(
      enclave_->RegisterExpression(outer.Serialize()).status().IsSecurityError());
  EXPECT_TRUE(enclave_->Eval(outer.Serialize(), {}).status().IsSecurityError());
}

TEST_F(EnclaveTest, WorkerPoolEvaluates) {
  OpenSessionWithKey();
  es::EsProgram p;
  p.GetData(0, TypeId::kInt64, Rnd());
  p.GetData(1, TypeId::kInt64, Rnd());
  p.Comp(es::CompareOp::kLt);
  p.SetData(0, TypeId::kBool);
  auto handle = enclave_->RegisterExpression(p.Serialize());
  ASSERT_TRUE(handle.ok());

  EnclaveWorkerPool::Options opts;
  opts.num_threads = 2;
  EnclaveWorkerPool pool(enclave_.get(), opts);
  for (int i = 0; i < 50; ++i) {
    auto r = pool.SubmitEval(
        *handle, {Value::Binary(Cell(Value::Int64(i))),
                  Value::Binary(Cell(Value::Int64(25)))});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ((*r)[0].bool_v(), i < 25);
  }
}

TEST_F(EnclaveTest, TransitionCostCharged) {
  EnclaveConfig cfg;
  cfg.transition_cost_ns = 1000;
  auto loaded = platform_->LoadEnclave(image_, cfg);
  ASSERT_TRUE(loaded.ok());
  auto& e = *loaded;
  uint64_t before = e->stats().transitions.load();
  (void)e->HasCek(1);  // not an ecall; no charge
  auto r = e->CompareCells(1, Bytes{}, Bytes{});
  (void)r;
  EXPECT_EQ(e->stats().transitions.load(), before + 1);
}

}  // namespace
}  // namespace aedb::enclave
