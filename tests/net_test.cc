#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "net/protocol.h"
#include "net/reactor/frame_decoder.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "server/database.h"
#include "tpcc/tpcc.h"

namespace aedb {
namespace {

using client::Driver;
using client::DriverOptions;
using net::MsgType;
using types::Value;

// ===========================================================================
// Pure codec tests (no sockets)
// ===========================================================================

TEST(ProtocolCodec, FrameHeaderRoundTrip) {
  Bytes frame = net::EncodeFrame(MsgType::kPing, Slice(std::string_view("abc")));
  ASSERT_EQ(frame.size(), net::kFrameHeaderSize + 3);
  auto header = net::DecodeFrameHeader(frame, net::kDefaultMaxPayload);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->type, MsgType::kPing);
  EXPECT_EQ(header->version, net::kProtocolVersion);
  EXPECT_EQ(header->payload_size, 3u);
}

TEST(ProtocolCodec, FrameHeaderRejectsBadMagic) {
  Bytes frame = net::EncodeFrame(MsgType::kPing, Slice());
  frame[0] ^= 0xFF;
  auto header = net::DecodeFrameHeader(frame, net::kDefaultMaxPayload);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolCodec, FrameHeaderRejectsBadVersion) {
  Bytes frame = net::EncodeFrame(MsgType::kPing, Slice());
  frame[4] = 99;
  auto header = net::DecodeFrameHeader(frame, net::kDefaultMaxPayload);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kNotSupported);
}

TEST(ProtocolCodec, FrameHeaderRejectsReservedBits) {
  Bytes frame = net::EncodeFrame(MsgType::kPing, Slice());
  frame[6] = 1;
  EXPECT_FALSE(net::DecodeFrameHeader(frame, net::kDefaultMaxPayload).ok());
}

TEST(ProtocolCodec, FrameHeaderRejectsOversizedLengthBeforeAllocation) {
  // A hostile 4 GiB length prefix must be rejected from the 12 header bytes
  // alone — no allocation may depend on it.
  Bytes frame = net::EncodeFrame(MsgType::kPing, Slice());
  frame[8] = frame[9] = frame[10] = frame[11] = 0xFF;
  auto header = net::DecodeFrameHeader(frame, net::kDefaultMaxPayload);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kOutOfRange);
}

TEST(ProtocolCodec, FrameHeaderRejectsTruncation) {
  Bytes frame = net::EncodeFrame(MsgType::kPing, Slice());
  for (size_t n = 0; n < net::kFrameHeaderSize; ++n) {
    EXPECT_FALSE(
        net::DecodeFrameHeader(Slice(frame.data(), n), net::kDefaultMaxPayload)
            .ok())
        << "accepted a " << n << "-byte header";
  }
}

TEST(ProtocolCodec, StatusPayloadRoundTripsEveryCode) {
  const Status statuses[] = {
      Status::InvalidArgument("a"), Status::NotFound("b"),
      Status::AlreadyExists("c"),   Status::Corruption("d"),
      Status::NotSupported("e"),    Status::FailedPrecondition("f"),
      Status::OutOfRange("g"),      Status::Internal("h"),
      Status::SecurityError("i"),   Status::PermissionDenied("j"),
      Status::KeyNotInEnclave("k"), Status::ReplayDetected("l"),
      Status::TypeCheckError("m"),
  };
  for (const Status& st : statuses) {
    Bytes payload;
    net::EncodeStatusPayload(&payload, st);
    Status decoded;
    ASSERT_TRUE(net::DecodeStatusPayload(payload, &decoded).ok());
    EXPECT_EQ(decoded.code(), st.code());
    EXPECT_EQ(decoded.message(), st.message());
  }
}

// ===========================================================================
// Incremental frame decoder (the event loop's streaming read path)
// ===========================================================================

using net::reactor::FrameDecoder;

Bytes Concat(std::initializer_list<Bytes> parts) {
  Bytes all;
  for (const Bytes& p : parts) all.insert(all.end(), p.begin(), p.end());
  return all;
}

TEST(FrameDecoderTest, OneByteAtATimeYieldsFramesExactlyAtBoundaries) {
  const Bytes f1 = net::EncodeFrame(MsgType::kPing, Slice(std::string_view("hello")));
  const Bytes f2 = net::EncodeFrame(MsgType::kQuery, Slice(std::string_view("")));
  const Bytes f3 =
      net::EncodeFrame(MsgType::kHandshake, Slice(std::string_view("xyzzy!")));
  const Bytes stream = Concat({f1, f2, f3});
  const size_t boundaries[] = {f1.size(), f1.size() + f2.size(), stream.size()};

  FrameDecoder dec;
  net::FrameHeader header;
  Bytes payload;
  size_t frames = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    dec.Feed(&stream[i], 1);
    auto poll = dec.Next(&header, &payload);
    if (i + 1 == boundaries[frames]) {
      // The byte that completes a frame must surface it immediately…
      ASSERT_EQ(poll, FrameDecoder::Poll::kFrame) << "at byte " << i;
      ++frames;
      // …and exactly one frame: the very next poll wants more bytes.
      EXPECT_EQ(dec.Next(&header, &payload), FrameDecoder::Poll::kNeedMore);
    } else {
      ASSERT_EQ(poll, FrameDecoder::Poll::kNeedMore) << "at byte " << i;
    }
  }
  ASSERT_EQ(frames, 3u);
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_FALSE(dec.has_partial_frame());
}

TEST(FrameDecoderTest, SplitAtEveryOffsetRoundTrips) {
  const Bytes f1 = net::EncodeFrame(MsgType::kPing, Slice(std::string_view("abcd")));
  const Bytes f2 = net::EncodeFrame(MsgType::kPong, Slice(std::string_view("wxyz")));
  const Bytes stream = Concat({f1, f2});
  // Every header/payload boundary in a two-frame stream, including 0 and end.
  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder dec;
    dec.Feed(stream.data(), split);
    std::vector<std::pair<MsgType, Bytes>> got;
    net::FrameHeader header;
    Bytes payload;
    while (dec.Next(&header, &payload) == FrameDecoder::Poll::kFrame) {
      got.emplace_back(header.type, payload);
    }
    dec.Feed(stream.data() + split, stream.size() - split);
    while (dec.Next(&header, &payload) == FrameDecoder::Poll::kFrame) {
      got.emplace_back(header.type, payload);
    }
    ASSERT_EQ(got.size(), 2u) << "split at " << split;
    EXPECT_EQ(got[0].first, MsgType::kPing);
    EXPECT_EQ(got[0].second, Bytes({'a', 'b', 'c', 'd'}));
    EXPECT_EQ(got[1].first, MsgType::kPong);
    EXPECT_EQ(got[1].second, Bytes({'w', 'x', 'y', 'z'}));
  }
}

TEST(FrameDecoderTest, PartialFramePredicateTracksStreamState) {
  const Bytes frame = net::EncodeFrame(MsgType::kPing, Slice(std::string_view("pp")));
  FrameDecoder dec;
  EXPECT_FALSE(dec.has_partial_frame());  // empty: idle, not stalled
  // A strict prefix of the header is a stall…
  dec.Feed(frame.data(), net::kFrameHeaderSize - 1);
  EXPECT_TRUE(dec.has_partial_frame());
  // …as is a full header still waiting for payload…
  dec.Feed(frame.data() + net::kFrameHeaderSize - 1, 2);
  EXPECT_TRUE(dec.has_partial_frame());
  // …but a complete, not-yet-consumed frame is backpressure, not a stall.
  dec.Feed(frame.data() + net::kFrameHeaderSize + 1,
           frame.size() - net::kFrameHeaderSize - 1);
  EXPECT_FALSE(dec.has_partial_frame());
  net::FrameHeader header;
  Bytes payload;
  ASSERT_EQ(dec.Next(&header, &payload), FrameDecoder::Poll::kFrame);
  EXPECT_FALSE(dec.has_partial_frame());
}

TEST(FrameDecoderTest, HostileLengthPrefixRejectedFromHeaderBytesAlone) {
  Bytes frame = net::EncodeFrame(MsgType::kPing, Slice());
  frame[8] = frame[9] = frame[10] = frame[11] = 0xFF;  // ~4 GiB claim
  FrameDecoder dec;
  dec.Feed(frame.data(), net::kFrameHeaderSize);
  net::FrameHeader header;
  Bytes payload;
  ASSERT_EQ(dec.Next(&header, &payload), FrameDecoder::Poll::kError);
  EXPECT_EQ(dec.error().code(), StatusCode::kOutOfRange);
  // The 12 buffered header bytes are all this cost.
  EXPECT_EQ(dec.buffered(), net::kFrameHeaderSize);
  EXPECT_TRUE(dec.broken());
  // Sticky: feeding a perfectly valid frame afterwards cannot resynchronize.
  Bytes good = net::EncodeFrame(MsgType::kPing, Slice(std::string_view("ok")));
  dec.Feed(good.data(), good.size());
  EXPECT_EQ(dec.Next(&header, &payload), FrameDecoder::Poll::kError);
}

TEST(FrameDecoderTest, MutationFuzzOnPartialFramesMatchesBlockingValidator) {
  // Deterministic fuzz: corrupt one header byte at a time, deliver the frame
  // in two arbitrary pieces, and require the streaming decoder to agree
  // byte-for-byte with the blocking-path validator (DecodeFrameHeader) on
  // accept vs reject. Payload-byte mutations must always decode (payload is
  // opaque at this layer).
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next_rand = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  const Bytes base =
      net::EncodeFrame(MsgType::kQuery, Slice(std::string_view("select 1")));
  for (int iter = 0; iter < 512; ++iter) {
    Bytes mutated = base;
    size_t pos = next_rand() % mutated.size();
    uint8_t bit = static_cast<uint8_t>(1u << (next_rand() % 8));
    mutated[pos] ^= bit;
    size_t split = next_rand() % (mutated.size() + 1);

    bool header_valid =
        net::DecodeFrameHeader(Slice(mutated.data(), net::kFrameHeaderSize),
                               net::kDefaultMaxPayload)
            .ok();

    FrameDecoder dec;
    dec.Feed(mutated.data(), split);
    net::FrameHeader header;
    Bytes payload;
    auto first = dec.Next(&header, &payload);
    if (!header_valid && split >= net::kFrameHeaderSize) {
      ASSERT_EQ(first, FrameDecoder::Poll::kError) << "iter " << iter;
      continue;
    }
    if (first == FrameDecoder::Poll::kFrame) {
      // A length-shrinking mutation (or split == size) completed the frame
      // inside the first piece already.
      EXPECT_EQ(payload.size(), header.payload_size) << "iter " << iter;
      continue;
    }
    dec.Feed(mutated.data() + split, mutated.size() - split);
    auto second = dec.Next(&header, &payload);
    if (!header_valid) {
      ASSERT_EQ(second, FrameDecoder::Poll::kError) << "iter " << iter;
      continue;
    }
    // Header survived the mutation (type byte flip, payload flip, or a
    // length flip that still fits): the decoder must hand the frame over
    // once enough bytes arrived, possibly needing the declared extra.
    if (second == FrameDecoder::Poll::kFrame) {
      EXPECT_EQ(payload.size(), header.payload_size) << "iter " << iter;
    } else {
      // A length mutation enlarged the claim: mid-frame, stalled.
      ASSERT_EQ(second, FrameDecoder::Poll::kNeedMore) << "iter " << iter;
      EXPECT_TRUE(dec.has_partial_frame()) << "iter " << iter;
    }
  }
}

sql::ResultSet SampleResultSet() {
  sql::ResultSet rs;
  rs.columns = {"id", "name", "balance", "blob"};
  rs.column_enc = {types::EncryptionType::Plaintext(),
                   types::EncryptionType::Encrypted(types::EncKind::kDeterministic,
                                                    7, false),
                   types::EncryptionType::Encrypted(types::EncKind::kRandomized,
                                                    9, true),
                   types::EncryptionType::Plaintext()};
  rs.rows.push_back({Value::Int32(1), Value::String("alice"),
                     Value::Double(3.25), Value::Binary({0x00, 0xFF, 0x10})});
  rs.rows.push_back({Value::Null(types::TypeId::kInt32), Value::String(""),
                     Value::Int64(-42), Value::Bool(true)});
  return rs;
}

TEST(ProtocolCodec, ResultSetRoundTrip) {
  sql::ResultSet rs = SampleResultSet();
  Bytes body;
  net::EncodeResultSet(&body, rs);
  auto decoded = net::DecodeResultSet(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->columns, rs.columns);
  ASSERT_EQ(decoded->rows.size(), rs.rows.size());
  for (size_t r = 0; r < rs.rows.size(); ++r) {
    for (size_t c = 0; c < rs.columns.size(); ++c) {
      EXPECT_TRUE(decoded->rows[r][c] == rs.rows[r][c])
          << "row " << r << " col " << c;
    }
  }
  for (size_t c = 0; c < rs.column_enc.size(); ++c) {
    EXPECT_TRUE(decoded->column_enc[c] == rs.column_enc[c]);
  }
}

TEST(ProtocolCodec, QueryNamedReqRoundTrip) {
  net::QueryNamedReq req;
  req.sql = "SELECT * FROM T WHERE a = @x";
  req.params = {{"x", Value::Int64(99)}, {"y", Value::String("s")}};
  req.txn = 17;
  req.session_id = 23;
  auto decoded = net::QueryNamedReq::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sql, req.sql);
  ASSERT_EQ(decoded->params.size(), 2u);
  EXPECT_EQ(decoded->params[0].first, "x");
  EXPECT_TRUE(decoded->params[1].second == Value::String("s"));
  EXPECT_EQ(decoded->txn, 17u);
  EXPECT_EQ(decoded->session_id, 23u);
}

TEST(ProtocolCodec, DescribeResultRoundTripWithAttestation) {
  server::DescribeResult d;
  server::DescribeResult::ParamInfo p;
  p.name = "ssn";
  p.type = types::TypeId::kString;
  p.enc = types::EncryptionType::Encrypted(types::EncKind::kRandomized, 3, true);
  d.params.push_back(p);
  server::KeyDescription key;
  key.cek_id = 3;
  key.cek.name = "CEK1";
  keys::CekValue v;
  v.cmk_name = "CMK1";
  v.encrypted_value = {1, 2, 3};
  v.signature = {4, 5};
  key.cek.values.push_back(v);
  key.cmk.name = "CMK1";
  key.cmk.provider_name = "vault";
  key.cmk.key_path = "kv/x";
  key.cmk.enclave_enabled = true;
  key.cmk.signature = {9, 9};
  d.keys.push_back(key);
  d.requires_enclave = true;
  d.enclave_cek_ids = {3};
  d.attestation_included = true;
  d.health_certificate.host_signing_public = {1};
  d.health_certificate.hgs_signature = {2};
  d.attestation.report_bytes = {3, 3};
  d.attestation.report_signature = {4};
  d.attestation.enclave_public_key = {5};
  d.attestation.enclave_dh_public = {6, 6};
  d.attestation.dh_signature = {7};
  d.attestation.session_id = 11;

  Bytes body;
  net::EncodeDescribeResult(&body, d);
  auto decoded = net::DecodeDescribeResult(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->params.size(), 1u);
  EXPECT_EQ(decoded->params[0].name, "ssn");
  EXPECT_TRUE(decoded->params[0].enc == p.enc);
  ASSERT_EQ(decoded->keys.size(), 1u);
  EXPECT_EQ(decoded->keys[0].cmk.key_path, "kv/x");
  EXPECT_TRUE(decoded->keys[0].cmk.enclave_enabled);
  EXPECT_TRUE(decoded->requires_enclave);
  EXPECT_EQ(decoded->enclave_cek_ids, std::vector<uint32_t>{3});
  ASSERT_TRUE(decoded->attestation_included);
  EXPECT_EQ(decoded->attestation.session_id, 11u);
  EXPECT_EQ(decoded->attestation.enclave_dh_public, (Bytes{6, 6}));
}

/// Fuzz-style robustness: every truncated prefix and a batch of single-byte
/// mutations of a valid encoding must decode to a clean error or a valid
/// value — never crash, hang, or trip ASan/UBSan.
TEST(ProtocolCodec, TruncatedAndMutatedPayloadsNeverCrash) {
  sql::ResultSet rs = SampleResultSet();
  Bytes body;
  net::EncodeResultSet(&body, rs);
  for (size_t n = 0; n < body.size(); ++n) {
    (void)net::DecodeResultSet(Slice(body.data(), n));
  }
  server::DescribeResult d;
  d.requires_enclave = true;
  Bytes dbody;
  net::EncodeDescribeResult(&dbody, d);
  for (size_t n = 0; n < dbody.size(); ++n) {
    (void)net::DecodeDescribeResult(Slice(dbody.data(), n));
  }
  // Deterministic single-byte mutations (position * 131, value + position).
  for (size_t i = 0; i < body.size(); ++i) {
    Bytes mutated = body;
    mutated[i] = static_cast<uint8_t>(mutated[i] + 1 + (i * 131) % 250);
    (void)net::DecodeResultSet(mutated);
  }
  for (size_t i = 0; i < 64; ++i) {
    Bytes garbage(i, static_cast<uint8_t>(i * 37 + 1));
    (void)net::DecodeResultSet(garbage);
    (void)net::DecodeDescribeResult(garbage);
    (void)net::QueryNamedReq::Decode(garbage);
    (void)net::QueryReq::Decode(garbage);
    (void)net::ColumnReq::Decode(garbage);
    (void)net::ForwardReq::Decode(garbage);
    (void)net::HandshakeReq::Decode(garbage);
  }
}

// ===========================================================================
// Server fixture
// ===========================================================================

class NetTest : public ::testing::Test {
 protected:
  static constexpr const char* kVaultPath = "kv/net-test";

  void SetUp() override {
    vault_ = std::make_unique<keys::InMemoryKeyVault>();
    ASSERT_TRUE(vault_->CreateKey(kVaultPath, 1024).ok());
    ASSERT_TRUE(registry_.Register(vault_.get()).ok());

    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("net-author")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
    hgs_ = std::make_unique<attestation::HostGuardianService>();

    server::ServerOptions opts;
    opts.engine.lock_timeout = std::chrono::milliseconds(200);
    db_ = std::make_unique<server::Database>(opts, hgs_.get(), &image_);
    hgs_->RegisterTcgLog(db_->platform()->tcg_log());

    net::ServerConfig config;
    config.read_timeout_ms = 2000;
    config.write_timeout_ms = 2000;
    server_ = std::make_unique<net::Server>(db_.get(), config);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<net::SocketTransport> ConnectTransport() {
    net::SocketTransport::Options topts;
    topts.port = server_->port();
    topts.timeout_ms = 5000;
    auto t = net::SocketTransport::Connect(topts);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? std::move(t).value() : nullptr;
  }

  std::unique_ptr<Driver> MakeSocketDriver() {
    auto transport = ConnectTransport();
    if (!transport) return nullptr;
    DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    return std::make_unique<Driver>(std::move(transport), &registry_,
                                    hgs_->signing_public(), dopts);
  }

  std::unique_ptr<Driver> MakeInProcessDriver() {
    DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    return std::make_unique<Driver>(db_.get(), &registry_,
                                    hgs_->signing_public(), dopts);
  }

  std::unique_ptr<keys::InMemoryKeyVault> vault_;
  keys::KeyProviderRegistry registry_;
  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<server::Database> db_;
  std::unique_ptr<net::Server> server_;
};

/// Raw TCP client for sending malformed byte streams.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    timeval tv{2, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() { Close(); }

  bool connected() const { return connected_; }

  bool Send(Slice data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t w = ::send(fd_, data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  /// Reads one response frame; returns false on EOF/timeout.
  bool ReadFrame(net::MsgType* type, Bytes* payload) {
    Bytes header(net::kFrameHeaderSize);
    if (!ReadFull(header.data(), header.size())) return false;
    auto h = net::DecodeFrameHeader(header, net::kDefaultMaxPayload);
    if (!h.ok()) return false;
    payload->resize(h->payload_size);
    if (h->payload_size > 0 && !ReadFull(payload->data(), payload->size())) {
      return false;
    }
    *type = h->type;
    return true;
  }

  /// True when the server has closed the connection (clean EOF).
  bool ReadEof() {
    uint8_t byte;
    ssize_t r = ::recv(fd_, &byte, 1, 0);
    return r == 0;
  }

  bool Handshake() {
    net::HandshakeReq req;
    if (!Send(net::EncodeFrame(MsgType::kHandshake, req.Encode()))) return false;
    net::MsgType type;
    Bytes payload;
    return ReadFrame(&type, &payload) && type == MsgType::kHandshakeAck;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  bool ReadFull(uint8_t* buf, size_t n) {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::recv(fd_, buf + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
};

// ===========================================================================
// Handshake, framing and robustness
// ===========================================================================

TEST_F(NetTest, HandshakeAssignsConnectionIdsAndPingWorks) {
  auto t1 = ConnectTransport();
  auto t2 = ConnectTransport();
  ASSERT_TRUE(t1 && t2);
  EXPECT_NE(t1->connection_id(), t2->connection_id());
  EXPECT_TRUE(t1->Ping().ok());
  EXPECT_TRUE(t2->Ping().ok());
  EXPECT_GE(server_->stats().connections_accepted.load(), 2u);
  EXPECT_GE(server_->stats().frames_in.load(), 4u);
  EXPECT_GE(server_->stats().frames_out.load(), 4u);
}

TEST_F(NetTest, FirstFrameMustBeHandshake) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send(net::EncodeFrame(MsgType::kPing, Slice())));
  net::MsgType type;
  Bytes payload;
  ASSERT_TRUE(conn.ReadFrame(&type, &payload));
  EXPECT_EQ(type, MsgType::kError);
  Status decoded;
  ASSERT_TRUE(net::DecodeStatusPayload(payload, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(conn.ReadEof());
}

TEST_F(NetTest, TruncatedHeaderThenDisconnectLeavesServerHealthy) {
  {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.connected());
    ASSERT_TRUE(conn.Send(Slice(std::string_view("AEDB\x01"))));
    conn.Close();  // mid-header disconnect
  }
  // Server must survive and keep serving new connections.
  auto t = ConnectTransport();
  ASSERT_TRUE(t);
  EXPECT_TRUE(t->Ping().ok());
}

TEST_F(NetTest, MidFramePayloadDisconnectLeavesServerHealthy) {
  {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.connected());
    ASSERT_TRUE(conn.Handshake());
    // Header promises 100 payload bytes; send only 10 and vanish.
    Bytes frame;
    net::AppendFrame(&frame, MsgType::kQuery, Bytes(100, 0xAB));
    frame.resize(net::kFrameHeaderSize + 10);
    ASSERT_TRUE(conn.Send(frame));
    conn.Close();
  }
  for (int i = 0; i < 50 && server_->stats().protocol_errors.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server_->stats().protocol_errors.load(), 1u);
  auto t = ConnectTransport();
  ASSERT_TRUE(t);
  EXPECT_TRUE(t->Ping().ok());
}

TEST_F(NetTest, OversizedLengthPrefixIsRejectedWithCleanError) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Handshake());
  Bytes header;
  PutU32(&header, net::kProtocolMagic);
  header.push_back(net::kProtocolVersion);
  header.push_back(static_cast<uint8_t>(MsgType::kQuery));
  PutU16(&header, 0);
  PutU32(&header, 0xFFFFFFFFu);  // 4 GiB claim
  ASSERT_TRUE(conn.Send(header));
  net::MsgType type;
  Bytes payload;
  ASSERT_TRUE(conn.ReadFrame(&type, &payload));
  EXPECT_EQ(type, MsgType::kError);
  Status decoded;
  ASSERT_TRUE(net::DecodeStatusPayload(payload, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(conn.ReadEof());  // stream is poisoned → server hangs up
  auto t = ConnectTransport();
  ASSERT_TRUE(t);
  EXPECT_TRUE(t->Ping().ok());
}

TEST_F(NetTest, BadMagicClosesConnectionCleanly) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  Bytes garbage(net::kFrameHeaderSize, 0x5A);
  ASSERT_TRUE(conn.Send(garbage));
  net::MsgType type;
  Bytes payload;
  ASSERT_TRUE(conn.ReadFrame(&type, &payload));
  EXPECT_EQ(type, MsgType::kError);
  EXPECT_TRUE(conn.ReadEof());
}

TEST_F(NetTest, UnknownMessageTypeAnswersErrorAndKeepsConnection) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Handshake());
  ASSERT_TRUE(
      conn.Send(net::EncodeFrame(static_cast<MsgType>(60), Slice())));
  net::MsgType type;
  Bytes payload;
  ASSERT_TRUE(conn.ReadFrame(&type, &payload));
  EXPECT_EQ(type, MsgType::kError);
  Status decoded;
  ASSERT_TRUE(net::DecodeStatusPayload(payload, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kNotSupported);
  // Framing stayed valid, so the connection must still serve requests.
  ASSERT_TRUE(conn.Send(net::EncodeFrame(MsgType::kPing, Slice())));
  ASSERT_TRUE(conn.ReadFrame(&type, &payload));
  EXPECT_EQ(type, MsgType::kPong);
}

TEST_F(NetTest, MalformedRequestPayloadAnswersErrorAndKeepsConnection) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Handshake());
  Bytes garbage(17, 0xEE);
  ASSERT_TRUE(conn.Send(net::EncodeFrame(MsgType::kQueryNamed, garbage)));
  net::MsgType type;
  Bytes payload;
  ASSERT_TRUE(conn.ReadFrame(&type, &payload));
  EXPECT_EQ(type, MsgType::kError);
  ASSERT_TRUE(conn.Send(net::EncodeFrame(MsgType::kPing, Slice())));
  ASSERT_TRUE(conn.ReadFrame(&type, &payload));
  EXPECT_EQ(type, MsgType::kPong);
}

/// Fuzz-style: random-ish byte blasts at the server must never hang or kill
/// it — every connection ends with the server still accepting.
TEST_F(NetTest, GarbageStreamsNeverWedgeTheServer) {
  for (int round = 0; round < 16; ++round) {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.connected());
    Bytes blast(64 + round * 13);
    for (size_t i = 0; i < blast.size(); ++i) {
      blast[i] = static_cast<uint8_t>((round * 251 + i * 97) & 0xFF);
    }
    conn.Send(blast);
    conn.Close();
  }
  auto t = ConnectTransport();
  ASSERT_TRUE(t);
  EXPECT_TRUE(t->Ping().ok());
}

TEST_F(NetTest, StopWhileClientConnectedShutsDownGracefully) {
  auto t = ConnectTransport();
  ASSERT_TRUE(t);
  EXPECT_TRUE(t->Ping().ok());
  server_->Stop();
  // The transport observes a clean error, not a hang.
  Status st = t->Ping();
  EXPECT_FALSE(st.ok());
  // And a second Stop is harmless.
  server_->Stop();
}

// ===========================================================================
// End-to-end: AE driver over the wire
// ===========================================================================

TEST_F(NetTest, EncryptedQueryOverSocketMatchesInProcess) {
  auto sock_driver = MakeSocketDriver();
  ASSERT_TRUE(sock_driver);
  ASSERT_TRUE(sock_driver
                  ->ProvisionCmk("NetCMK", vault_->name(), kVaultPath,
                                 /*enclave_enabled=*/true)
                  .ok());
  ASSERT_TRUE(sock_driver->ProvisionCek("NetCEK", "NetCMK").ok());
  Status st = sock_driver->ExecuteDdl(
      "CREATE TABLE Secrets (id INT NOT NULL, "
      "ssn VARCHAR(16) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = NetCEK, "
      "ENCRYPTION_TYPE = Deterministic, "
      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'), "
      "note VARCHAR(40) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = NetCEK, "
      "ENCRYPTION_TYPE = Randomized, "
      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))");
  ASSERT_TRUE(st.ok()) << st.ToString();

  for (int i = 0; i < 5; ++i) {
    auto r = sock_driver->Query(
        "INSERT INTO Secrets (id, ssn, note) VALUES (@id, @ssn, @note)",
        {{"id", Value::Int32(i)},
         {"ssn", Value::String("ssn-" + std::to_string(i))},
         {"note", Value::String("note for " + std::to_string(i))}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  // DET predicate over the wire: the driver encrypts @ssn client-side.
  auto over_socket = sock_driver->Query(
      "SELECT id, ssn, note FROM Secrets WHERE ssn = @ssn",
      {{"ssn", Value::String("ssn-3")}});
  ASSERT_TRUE(over_socket.ok()) << over_socket.status().ToString();

  auto inproc_driver = MakeInProcessDriver();
  ASSERT_TRUE(inproc_driver);
  auto in_process = inproc_driver->Query(
      "SELECT id, ssn, note FROM Secrets WHERE ssn = @ssn",
      {{"ssn", Value::String("ssn-3")}});
  ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();

  ASSERT_EQ(over_socket->rows.size(), 1u);
  ASSERT_EQ(in_process->rows.size(), 1u);
  for (size_t c = 0; c < over_socket->columns.size(); ++c) {
    EXPECT_TRUE(over_socket->rows[0][c] == in_process->rows[0][c]);
  }
  EXPECT_EQ(over_socket->rows[0][1].str(), "ssn-3");
  EXPECT_EQ(over_socket->rows[0][2].str(), "note for 3");
}

TEST_F(NetTest, TransactionsWorkOverSocket) {
  auto driver = MakeSocketDriver();
  ASSERT_TRUE(driver);
  ASSERT_TRUE(driver->ExecuteDdl("CREATE TABLE Accts (id INT, bal INT)").ok());
  uint64_t txn = driver->Begin();
  ASSERT_NE(txn, 0u);
  ASSERT_TRUE(driver
                  ->Query("INSERT INTO Accts (id, bal) VALUES (@i, @b)",
                          {{"i", Value::Int32(1)}, {"b", Value::Int32(100)}},
                          txn)
                  .ok());
  ASSERT_TRUE(driver->Rollback(txn).ok());
  auto empty = driver->Query("SELECT id FROM Accts");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->rows.size(), 0u);

  txn = driver->Begin();
  ASSERT_TRUE(driver
                  ->Query("INSERT INTO Accts (id, bal) VALUES (@i, @b)",
                          {{"i", Value::Int32(2)}, {"b", Value::Int32(50)}},
                          txn)
                  .ok());
  ASSERT_TRUE(driver->Commit(txn).ok());
  auto one = driver->Query("SELECT id FROM Accts");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->rows.size(), 1u);
}

// ===========================================================================
// Concurrent sessions
// ===========================================================================

TEST_F(NetTest, ConcurrentSocketSessionsKeepNonceAndLockIsolation) {
  // Provision an enclave-enabled key and a RND column so every session runs
  // the full attest → install-CEK → encrypted-DML path (per-session nonces).
  auto admin = MakeSocketDriver();
  ASSERT_TRUE(admin);
  ASSERT_TRUE(admin
                  ->ProvisionCmk("ConcCMK", vault_->name(), kVaultPath,
                                 /*enclave_enabled=*/true)
                  .ok());
  ASSERT_TRUE(admin->ProvisionCek("ConcCEK", "ConcCMK").ok());
  ASSERT_TRUE(admin
                  ->ExecuteDdl(
                      "CREATE TABLE Ledger (worker INT, seq INT, "
                      "memo VARCHAR(32) ENCRYPTED WITH ("
                      "COLUMN_ENCRYPTION_KEY = ConcCEK, "
                      "ENCRYPTION_TYPE = Randomized, "
                      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))")
                  .ok());
  ASSERT_TRUE(
      admin->ExecuteDdl("CREATE TABLE Tally (id INT, total INT)").ok());
  ASSERT_TRUE(admin
                  ->Query("INSERT INTO Tally (id, total) VALUES (@i, @t)",
                          {{"i", Value::Int32(1)}, {"t", Value::Int32(0)}})
                  .ok());

  constexpr int kWorkers = 4;
  constexpr int kOpsPerWorker = 12;
  std::vector<std::unique_ptr<Driver>> drivers;
  for (int w = 0; w < kWorkers; ++w) {
    auto d = MakeSocketDriver();
    ASSERT_TRUE(d);
    drivers.push_back(std::move(d));
  }

  std::vector<std::thread> threads;
  std::vector<Status> failures(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      Driver* d = drivers[w].get();
      for (int i = 0; i < kOpsPerWorker; ++i) {
        // Encrypted insert: exercises this session's enclave channel.
        auto ins = d->Query(
            "INSERT INTO Ledger (worker, seq, memo) VALUES (@w, @s, @m)",
            {{"w", Value::Int32(w)},
             {"s", Value::Int32(i)},
             {"m", Value::String("w" + std::to_string(w) + "#" +
                                 std::to_string(i))}});
        if (!ins.ok()) {
          failures[w] = ins.status();
          return;
        }
        // LIKE over the RND column runs inside the enclave: this session
        // must attest and forward its CEK over its own nonce'd channel.
        auto probe = d->Query(
            "SELECT seq FROM Ledger WHERE worker = @w AND memo LIKE @p",
            {{"w", Value::Int32(w)},
             {"p", Value::String("w" + std::to_string(w) + "#%")}});
        if (!probe.ok()) {
          failures[w] = probe.status();
          return;
        }
        if (probe->rows.size() != static_cast<size_t>(i + 1)) {
          failures[w] = Status::Internal("enclave LIKE returned wrong rows");
          return;
        }
        // Contended read-modify-write under the lock manager; aborts on
        // lock timeouts are retried, lost updates would corrupt the total.
        for (int attempt = 0;; ++attempt) {
          auto upd = d->Query("UPDATE Tally SET total = total + @one "
                              "WHERE id = @i",
                              {{"one", Value::Int32(1)},
                               {"i", Value::Int32(1)}});
          if (upd.ok()) break;
          if (attempt > 200) {
            failures[w] = upd.status();
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_TRUE(failures[w].ok()) << "worker " << w << ": "
                                  << failures[w].ToString();
  }

  // Every session attested independently (distinct, nonzero enclave
  // sessions — nonce streams are per-session, so sharing one would have
  // tripped replay detection under the concurrent load above).
  std::set<uint64_t> session_ids;
  for (auto& d : drivers) {
    EXPECT_NE(d->session_id(), 0u);
    session_ids.insert(d->session_id());
  }
  EXPECT_EQ(session_ids.size(), static_cast<size_t>(kWorkers));

  // All rows present and decryptable (read through a fresh session).
  auto rows = admin->Query("SELECT worker, seq, memo FROM Ledger");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(),
            static_cast<size_t>(kWorkers * kOpsPerWorker));
  auto total = admin->Query("SELECT total FROM Tally WHERE id = @i",
                            {{"i", Value::Int32(1)}});
  ASSERT_TRUE(total.ok());
  ASSERT_EQ(total->rows.size(), 1u);
  EXPECT_EQ(total->rows[0][0].i32(), kWorkers * kOpsPerWorker);
}

// ===========================================================================
// TPC-C over the wire
// ===========================================================================

TEST_F(NetTest, TpccRunsOverSocketAndMatchesInProcess) {
  tpcc::TpccConfig config;
  config.warehouses = 1;
  config.customers_per_district = 10;
  config.items = 50;
  config.initial_orders_per_district = 3;
  config.encryption = tpcc::Encryption::kPlaintext;

  auto loader_driver = MakeInProcessDriver();
  ASSERT_TRUE(loader_driver);
  tpcc::TpccLoader loader(loader_driver.get(), config);
  ASSERT_TRUE(loader.CreateSchema().ok());
  ASSERT_TRUE(loader.Load().ok());

  auto sock_driver = MakeSocketDriver();
  ASSERT_TRUE(sock_driver);
  tpcc::TpccTerminal terminal(sock_driver.get(), config, /*seed=*/7);
  for (int i = 0; i < 25; ++i) {
    Status st = terminal.RunOne();
    ASSERT_TRUE(st.ok()) << "txn " << i << ": " << st.ToString();
  }
  EXPECT_EQ(terminal.committed() + terminal.aborted(), 25u);
  EXPECT_GT(terminal.committed(), 0u);

  // The wire path must observe the exact same data as the in-process path.
  const std::string probe =
      "SELECT D_NEXT_O_ID, D_YTD FROM District WHERE D_W_ID = @w AND "
      "D_ID = @d";
  for (int d = 1; d <= config.districts_per_warehouse; ++d) {
    auto over_socket = sock_driver->Query(
        probe, {{"w", Value::Int32(1)}, {"d", Value::Int32(d)}});
    auto in_process = loader_driver->Query(
        probe, {{"w", Value::Int32(1)}, {"d", Value::Int32(d)}});
    ASSERT_TRUE(over_socket.ok());
    ASSERT_TRUE(in_process.ok());
    ASSERT_EQ(over_socket->rows.size(), in_process->rows.size());
    for (size_t c = 0; c < over_socket->columns.size(); ++c) {
      EXPECT_TRUE(over_socket->rows[0][c] == in_process->rows[0][c]);
    }
  }
}

}  // namespace
}  // namespace aedb
