#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/driver.h"
#include "common/random.h"
#include "crypto/drbg.h"
#include "fault/fault.h"
#include "server/router.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/engine.h"
#include "storage/heap_table.h"
#include "storage/torture.h"
#include "storage/wal.h"
#include "tpcc/tpcc.h"

namespace aedb::storage {
namespace {

Bytes B(std::string_view s) { return Slice(s).ToBytes(); }

/// Deterministic per-page fill byte so any cross-page corruption is visible.
uint8_t FillByte(uint32_t object_id, uint32_t page_no) {
  return static_cast<uint8_t>((object_id * 31 + page_no * 7 + 5) % 251);
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Global().Reset(); }
  void TearDown() override { fault::FaultRegistry::Global().Reset(); }
};

TEST_F(BufferPoolTest, PinCreateWriteReadBack) {
  MemPageStore store;
  BufferPool pool(&store, BufferPool::kMinPages);
  uint32_t obj = pool.NewObject();

  {
    auto pin = pool.Pin(PageId{obj, 0}, /*create=*/true);
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
    std::memset(pin->data(), FillByte(obj, 0), Page::kPageSize);
    pin->MarkDirty();
  }
  // Still cached: a re-pin is a hit and sees the bytes.
  auto again = pool.Pin(PageId{obj, 0}, /*create=*/false);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[17], FillByte(obj, 0));
  again->Release();
  EXPECT_FALSE(again->holds());

  BufferPoolStats stats = pool.stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);
  // A page the store never saw is NotFound without create.
  EXPECT_FALSE(pool.Pin(PageId{obj, 99}, /*create=*/false).ok());
}

TEST_F(BufferPoolTest, EvictionRoundTripsThroughStore) {
  MemPageStore store;
  BufferPool pool(&store, BufferPool::kMinPages);
  uint32_t obj = pool.NewObject();
  const uint32_t kPages = 4 * BufferPool::kMinPages;

  for (uint32_t p = 0; p < kPages; ++p) {
    auto pin = pool.Pin(PageId{obj, p}, /*create=*/true);
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
    std::memset(pin->data(), FillByte(obj, p), Page::kPageSize);
    pin->MarkDirty();
  }
  // Everything earlier than the last kMinPages pages was evicted (written
  // back, since every page is dirty) and must fault back in byte-exact.
  for (uint32_t p = 0; p < kPages; ++p) {
    auto pin = pool.Pin(PageId{obj, p}, /*create=*/false);
    ASSERT_TRUE(pin.ok()) << "page " << p << ": " << pin.status().ToString();
    EXPECT_EQ(pin->data()[0], FillByte(obj, p)) << "page " << p;
    EXPECT_EQ(pin->data()[Page::kPageSize - 1], FillByte(obj, p));
  }
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.writebacks, 0u);
  EXPECT_LE(stats.pinned_highwater, BufferPool::kMinPages);
}

TEST_F(BufferPoolTest, AllPinnedPoolRefusesThenRecovers) {
  MemPageStore store;
  BufferPool pool(&store, BufferPool::kMinPages);
  uint32_t obj = pool.NewObject();

  std::vector<PinnedPage> held;
  for (uint32_t p = 0; p < BufferPool::kMinPages; ++p) {
    auto pin = pool.Pin(PageId{obj, p}, /*create=*/true);
    ASSERT_TRUE(pin.ok());
    held.push_back(std::move(*pin));
  }
  EXPECT_EQ(pool.pinned(), BufferPool::kMinPages);

  // Every frame pinned: one more Pin must wait, then fail typed — but a
  // concurrent unpin rescues it. Release one pin from another thread while
  // the Pin call is blocked.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    held.back().Release();
  });
  auto rescued = pool.Pin(PageId{obj, BufferPool::kMinPages}, /*create=*/true);
  releaser.join();
  ASSERT_TRUE(rescued.ok()) << rescued.status().ToString();
  rescued->Release();

  // DropObject while frames are still pinned: it succeeds, store pages are
  // deleted immediately, and the pinned frames are doomed — even a stale
  // holder re-dirtying its pin afterwards must never write a dead object's
  // page back to the store.
  for (auto& pin : held) {
    if (!pin.holds()) continue;
    std::memset(pin.data(), 0xee, 16);
    pin.MarkDirty();
  }
  ASSERT_TRUE(pool.DropObject(obj).ok());
  for (auto& pin : held) {
    if (pin.holds()) {
      pin.MarkDirty();  // stale holder touches its doomed frame post-drop
      break;
    }
  }
  ASSERT_TRUE(pool.FlushAll().ok());  // must skip the doomed frames
  held.clear();
  EXPECT_EQ(pool.pinned(), 0u);
  Bytes img(Page::kPageSize, 0);
  EXPECT_TRUE(store.Read(PageId{obj, 0}, img.data()).IsNotFound());
  // Dropped pages are gone from the cache too...
  EXPECT_FALSE(pool.Pin(PageId{obj, 0}, /*create=*/false).ok());
  // ...and every doomed frame was reclaimed at its final unpin: a fresh
  // object can pin the entire pool without leaking a single frame.
  uint32_t obj2 = pool.NewObject();
  std::vector<PinnedPage> refill;
  for (uint32_t p = 0; p < BufferPool::kMinPages; ++p) {
    auto pin = pool.Pin(PageId{obj2, p}, /*create=*/true);
    ASSERT_TRUE(pin.ok()) << "frame leaked: " << pin.status().ToString();
    refill.push_back(std::move(*pin));
  }
}

TEST_F(BufferPoolTest, EvictFaultFailsPinAndLeavesVictimCached) {
  MemPageStore store;
  BufferPool pool(&store, BufferPool::kMinPages);
  uint32_t obj = pool.NewObject();
  for (uint32_t p = 0; p < BufferPool::kMinPages; ++p) {
    auto pin = pool.Pin(PageId{obj, p}, /*create=*/true);
    ASSERT_TRUE(pin.ok());
    std::memset(pin->data(), FillByte(obj, p), Page::kPageSize);
    pin->MarkDirty();
  }

  fault::FaultRegistry::Global().Arm(
      "pool/evict", fault::FaultSpec::OneShot(Status::Internal("evict io")));
  auto faulted = pool.Pin(PageId{obj, 1000}, /*create=*/true);
  EXPECT_FALSE(faulted.ok());
  fault::FaultRegistry::Global().DisarmAll();

  // The victim was not half-evicted: every resident page still reads back.
  for (uint32_t p = 0; p < BufferPool::kMinPages; ++p) {
    auto pin = pool.Pin(PageId{obj, p}, /*create=*/false);
    ASSERT_TRUE(pin.ok());
    EXPECT_EQ(pin->data()[3], FillByte(obj, p));
  }
  // And the pool works again once the fault clears.
  EXPECT_TRUE(pool.Pin(PageId{obj, 1000}, /*create=*/true).ok());
}

TEST_F(BufferPoolTest, WritebackFaultFailsFlushThenSucceeds) {
  MemPageStore store;
  BufferPool pool(&store, BufferPool::kMinPages);
  uint32_t obj = pool.NewObject();
  {
    auto pin = pool.Pin(PageId{obj, 0}, /*create=*/true);
    ASSERT_TRUE(pin.ok());
    std::memset(pin->data(), 0x5a, Page::kPageSize);
    pin->MarkDirty();
  }

  fault::FaultRegistry::Global().Arm(
      "pool/writeback",
      fault::FaultSpec::OneShot(Status::Internal("store write io")));
  EXPECT_FALSE(pool.FlushAll().ok());
  fault::FaultRegistry::Global().DisarmAll();

  // The page stayed dirty through the failed flush; retry lands it.
  ASSERT_TRUE(pool.FlushAll().ok());
  Bytes img(Page::kPageSize, 0);
  ASSERT_TRUE(store.Read(PageId{obj, 0}, img.data()).ok());
  EXPECT_EQ(img[100], 0x5a);
}

TEST_F(BufferPoolTest, BackgroundFlusherWritesDirtyPages) {
  MemPageStore store;
  BufferPool pool(&store, BufferPool::kMinPages);
  uint32_t obj = pool.NewObject();
  pool.StartFlusher(/*interval_ms=*/5);
  {
    auto pin = pool.Pin(PageId{obj, 0}, /*create=*/true);
    ASSERT_TRUE(pin.ok());
    std::memset(pin->data(), 0xc3, Page::kPageSize);
    pin->MarkDirty();
  }
  // The flusher, not an eviction, must land the page in the store.
  Bytes img(Page::kPageSize, 0);
  Status read = Status::NotFound("never");
  for (int i = 0; i < 500 && !read.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    read = store.Read(PageId{obj, 0}, img.data());
  }
  pool.StopFlusher();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(img[8], 0xc3);
  EXPECT_EQ(pool.stats().evictions, 0u);
  EXPECT_GT(pool.stats().writebacks, 0u);
}

/// The flusher must leave pinned frames alone: their holders mutate page
/// bytes under only the table latch, so a concurrent writeback could persist
/// a torn image — and a MarkDirty racing the dirty-bit clear would be lost.
TEST_F(BufferPoolTest, FlusherSkipsPinnedFramesAndKeepsThemDirty) {
  MemPageStore store;
  BufferPool pool(&store, BufferPool::kMinPages);
  uint32_t obj = pool.NewObject();
  pool.StartFlusher(/*interval_ms=*/2);

  auto pin = pool.Pin(PageId{obj, 0}, /*create=*/true);
  ASSERT_TRUE(pin.ok());
  std::memset(pin->data(), 0x7b, Page::kPageSize);
  pin->MarkDirty();
  // Many flusher cycles pass; the pinned frame never reaches the store.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Bytes img(Page::kPageSize, 0);
  EXPECT_TRUE(store.Read(PageId{obj, 0}, img.data()).IsNotFound());

  // The skip kept the dirty bit: after unpin the flusher lands the page.
  pin->Release();
  Status read = Status::NotFound("never");
  for (int i = 0; i < 500 && !read.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    read = store.Read(PageId{obj, 0}, img.data());
  }
  pool.StopFlusher();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(img[Page::kPageSize - 1], 0x7b);
  EXPECT_EQ(pool.stats().evictions, 0u);
}

/// Readers and writers over a working set several times the pool: eviction,
/// fault-in, and pin/unpin race under real concurrency (the TSan lane runs
/// this binary). Threads own disjoint pages, so any cross-thread corruption
/// is the pool's fault, not the test's.
TEST_F(BufferPoolTest, ConcurrentAccessWithPoolSmallerThanWorkingSet) {
  MemPageStore store;
  BufferPool pool(&store, BufferPool::kMinPages);
  constexpr int kThreads = 4;
  constexpr uint32_t kPagesPerThread = 16;  // 64 pages vs 8 frames
  std::vector<uint32_t> objects;
  for (int t = 0; t < kThreads; ++t) objects.push_back(pool.NewObject());

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      uint32_t obj = objects[static_cast<size_t>(t)];
      Xoshiro256 rng(static_cast<uint64_t>(1000 + t));
      for (uint32_t p = 0; p < kPagesPerThread; ++p) {
        auto pin = pool.Pin(PageId{obj, p}, /*create=*/true);
        if (!pin.ok()) { ++failures; return; }
        std::memset(pin->data(), FillByte(obj, p), Page::kPageSize);
        pin->MarkDirty();
      }
      for (int i = 0; i < 400; ++i) {
        uint32_t p = static_cast<uint32_t>(
            rng.Uniform(0, static_cast<int64_t>(kPagesPerThread) - 1));
        auto pin = pool.Pin(PageId{obj, p}, /*create=*/false);
        if (!pin.ok()) { ++failures; return; }
        if (pin->data()[0] != FillByte(obj, p) ||
            pin->data()[Page::kPageSize / 2] != FillByte(obj, p)) {
          ++failures;
          return;
        }
        if (i % 3 == 0) {  // rewrite (same pattern) to keep dirty churn up
          std::memset(pin->data(), FillByte(obj, p), Page::kPageSize);
          pin->MarkDirty();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(pool.stats().evictions, 0u);
}

// --- paged structures behave exactly like unbounded ones ---

TEST_F(BufferPoolTest, HeapTableTinyPoolMatchesUnbounded) {
  MemPageStore store;
  BufferPool tiny(&store, BufferPool::kMinPages);
  HeapTable paged(&tiny);
  HeapTable unbounded;  // private default-capacity pool

  Xoshiro256 rng(11);
  std::vector<Rid> rids_a, rids_b;
  for (int i = 0; i < 1500; ++i) {
    size_t len = static_cast<size_t>(rng.Uniform(1, 300));
    Bytes rec(len, static_cast<uint8_t>(i % 251));
    auto ra = paged.Insert(rec);
    auto rb = unbounded.Insert(rec);
    ASSERT_TRUE(ra.ok() && rb.ok());
    // Placement must be identical: the pool is invisible to layout.
    EXPECT_EQ(ra->page, rb->page);
    EXPECT_EQ(ra->slot, rb->slot);
    rids_a.push_back(*ra);
    rids_b.push_back(*rb);
  }
  for (size_t i = 0; i < rids_a.size(); i += 3) {
    ASSERT_TRUE(paged.Delete(rids_a[i]).ok());
    ASSERT_TRUE(unbounded.Delete(rids_b[i]).ok());
  }
  EXPECT_EQ(paged.live_rows(), unbounded.live_rows());
  EXPECT_EQ(paged.page_count(), unbounded.page_count());

  std::vector<std::pair<uint64_t, Bytes>> scan_a, scan_b;
  ASSERT_TRUE(paged
                  .Scan([&](const Rid& rid, Slice rec) {
                    scan_a.emplace_back(rid.Encode(), rec.ToBytes());
                    return true;
                  })
                  .ok());
  ASSERT_TRUE(unbounded
                  .Scan([&](const Rid& rid, Slice rec) {
                    scan_b.emplace_back(rid.Encode(), rec.ToBytes());
                    return true;
                  })
                  .ok());
  EXPECT_EQ(scan_a, scan_b);
  EXPECT_GT(tiny.stats().evictions, 0u);
}

TEST_F(BufferPoolTest, BTreeTinyPoolMatchesUnbounded) {
  BinaryComparator cmp;
  MemPageStore store;
  BufferPool tiny(&store, BufferPool::kMinPages);
  BTree paged(&cmp, /*unique=*/false, &tiny);
  BTree unbounded(&cmp, /*unique=*/false);

  Xoshiro256 rng(23);
  std::vector<std::pair<std::string, uint16_t>> entries;
  for (int i = 0; i < 3000; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%06d",
             static_cast<int>(rng.Uniform(0, 99999)));
    uint16_t slot = static_cast<uint16_t>(rng.Uniform(0, 9999));
    ASSERT_TRUE(paged.Insert(B(buf), Rid{0, slot}).ok());
    ASSERT_TRUE(unbounded.Insert(B(buf), Rid{0, slot}).ok());
    entries.emplace_back(buf, slot);
  }
  for (size_t i = 0; i < entries.size(); i += 4) {
    auto da = paged.Delete(B(entries[i].first), Rid{0, entries[i].second});
    auto db = unbounded.Delete(B(entries[i].first), Rid{0, entries[i].second});
    ASSERT_TRUE(da.ok() && db.ok());
    EXPECT_EQ(*da, *db);
  }
  ASSERT_EQ(paged.size(), unbounded.size());

  auto ia = paged.Begin();
  auto ib = unbounded.Begin();
  while (ia.Valid() && ib.Valid()) {
    auto ka = ia.key();
    auto kb = ib.key();
    ASSERT_TRUE(ka.ok() && kb.ok());
    ASSERT_EQ(*ka, *kb);
    ASSERT_EQ(ia.rid().Encode(), ib.rid().Encode());
    ia.Next();
    ib.Next();
  }
  EXPECT_FALSE(ia.Valid());
  EXPECT_FALSE(ib.Valid());

  for (size_t i = 1; i < entries.size(); i += 97) {
    auto ra = paged.SeekEqual(B(entries[i].first));
    auto rb = unbounded.SeekEqual(B(entries[i].first));
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(ra->size(), rb->size());
  }
  EXPECT_GT(tiny.stats().evictions, 0u);
}

// --- group commit ---

constexpr uint32_t kTable = 1;

class TempDir {
 public:
  TempDir() {
    char templ[] = "/tmp/aedb_bufferpool_XXXXXX";
    char* made = mkdtemp(templ);
    EXPECT_NE(made, nullptr);
    path_ = made == nullptr ? "/tmp" : made;
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST_F(BufferPoolTest, GroupCommitAmortizesFsyncsAndLosesNothing) {
  TempDir dir;
  const std::string wal_path = dir.path() + "/wal.log";
  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 25;

  EngineOptions opts;
  opts.group_commit_window_us = 200;
  StorageEngine engine(opts);
  ASSERT_TRUE(engine.CreateTable(kTable).ok());
  ASSERT_TRUE(engine.wal().AttachFile(wal_path).ok());

  std::vector<std::thread> committers;
  std::atomic<int> hard_errors{0};
  for (int t = 0; t < kThreads; ++t) {
    committers.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        uint64_t txn = engine.Begin();
        std::string row = "t" + std::to_string(t) + "-" + std::to_string(i);
        auto rid = engine.HeapInsert(txn, kTable, B(row));
        if (!rid.ok() || !engine.Commit(txn).ok()) {
          ++hard_errors;
          return;
        }
      }
    });
  }
  for (auto& c : committers) c.join();
  ASSERT_EQ(hard_errors.load(), 0);

  const uint64_t requests = engine.wal().sync_requests();
  const uint64_t batches = engine.wal().group_commit_batches();
  EXPECT_EQ(requests, static_cast<uint64_t>(kThreads * kCommitsPerThread));
  ASSERT_GT(batches, 0u);
  EXPECT_LT(batches, requests);  // at least some cohorts formed
  EXPECT_GT(static_cast<double>(requests) / static_cast<double>(batches), 1.5);

  // Every acked commit is durable: a fresh engine recovering from the file
  // sees all of them.
  StorageEngine fresh;
  ASSERT_TRUE(fresh.CreateTable(kTable).ok());
  auto load = fresh.wal().AttachFile(wal_path);
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  EXPECT_FALSE(load->torn_tail);
  auto recovered = fresh.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(fresh.table(kTable)->live_rows(),
            static_cast<uint64_t>(kThreads * kCommitsPerThread));
}

TEST_F(BufferPoolTest, SingleCommitterGroupCommitIsJustSync) {
  TempDir dir;
  EngineOptions opts;  // window 0: pure natural batching, no linger
  StorageEngine engine(opts);
  ASSERT_TRUE(engine.CreateTable(kTable).ok());
  ASSERT_TRUE(engine.wal().AttachFile(dir.path() + "/wal.log").ok());
  for (int i = 0; i < 5; ++i) {
    uint64_t txn = engine.Begin();
    ASSERT_TRUE(engine.HeapInsert(txn, kTable, B("r" + std::to_string(i))).ok());
    ASSERT_TRUE(engine.Commit(txn).ok());
  }
  // Alone, every commit is its own cohort: ratio exactly 1.
  EXPECT_EQ(engine.wal().sync_requests(), 5u);
  EXPECT_EQ(engine.wal().group_commit_batches(), 5u);
}

/// LoadImage (the reopen-after-crash path) can rewind the LSN space; the
/// fsync watermark must rewind with it, or SyncUpTo on records minted at
/// reused LSNs would skip the fsync — a silent durability hole.
TEST_F(BufferPoolTest, LoadImageResetsTheGroupCommitBarrier) {
  TempDir dir;
  Wal wal;
  ASSERT_TRUE(wal.AttachFile(dir.path() + "/wal.log").ok());
  LogRecord rec;
  rec.txn_id = 1;
  rec.type = LogRecordType::kBegin;
  auto lsn = wal.Append(rec);
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(wal.SyncUpTo(*lsn).ok());
  const uint64_t fsyncs_before = wal.fsyncs();

  wal.LoadImage(Bytes());  // empty image: next_lsn_ rewinds to 1
  LogRecord rec2;
  rec2.txn_id = 2;
  rec2.type = LogRecordType::kBegin;
  auto lsn2 = wal.Append(rec2);
  ASSERT_TRUE(lsn2.ok()) << lsn2.status().ToString();
  ASSERT_LE(*lsn2, *lsn);  // a stale watermark would claim this is durable
  ASSERT_TRUE(wal.SyncUpTo(*lsn2).ok());
  EXPECT_GT(wal.fsyncs(), fsyncs_before) << "barrier rode a stale watermark";
}

/// The crash-point matrix with group commit on: the acked prefix stays exact
/// at every boundary and torn cut (PR 7's invariant must survive the
/// batching refactor).
TEST_F(BufferPoolTest, GroupCommitCrashTortureStaysExact) {
  auto factory = [] {
    EngineOptions opts;
    opts.group_commit_window_us = 200;
    opts.pool_pages = BufferPool::kMinPages;  // paged storage under torture too
    auto engine = std::make_unique<StorageEngine>(opts);
    EXPECT_TRUE(engine->CreateTable(kTable).ok());
    return engine;
  };
  auto workload = [](StorageEngine* engine) -> Status {
    for (int round = 0; round < 5; ++round) {
      uint64_t txn = engine->Begin();
      Rid rid;
      AEDB_ASSIGN_OR_RETURN(
          rid, engine->HeapInsert(txn, kTable, B("gc-" + std::to_string(round))));
      if (round % 2 == 0) {
        AEDB_RETURN_IF_ERROR(engine->Commit(txn));
      } else {
        AEDB_RETURN_IF_ERROR(engine->Abort(txn));
      }
    }
    return Status::OK();
  };
  auto report = RunWalCrashTorture(factory, workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_GE(report->crash_points, 10u);
}

// --- end-to-end: TPC-C over a pool smaller than its data ---

class PagedTpccTest : public ::testing::Test {
 protected:
  struct Instance {
    std::unique_ptr<keys::InMemoryKeyVault> vault;
    keys::KeyProviderRegistry registry;
    crypto::RsaPrivateKey author_key;
    enclave::EnclaveImage image;
    std::unique_ptr<attestation::HostGuardianService> hgs;
    std::unique_ptr<server::Database> db;

    explicit Instance(uint64_t pool_pages) {
      vault = std::make_unique<keys::InMemoryKeyVault>();
      EXPECT_TRUE(vault->CreateKey("kv/tpcc-enclave", 1024).ok());
      EXPECT_TRUE(registry.Register(vault.get()).ok());
      crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                            Slice(std::string_view("pool-author")));
      author_key = crypto::GenerateRsaKey(1024, &drbg);
      image = enclave::EnclaveImage::MakeEsImage(1, author_key);
      hgs = std::make_unique<attestation::HostGuardianService>();
      server::ServerOptions opts;
      opts.engine.pool_pages = pool_pages;
      opts.engine.group_commit_window_us = 100;
      db = std::make_unique<server::Database>(opts, hgs.get(), &image);
      hgs->RegisterTcgLog(db->platform()->tcg_log());
    }

    std::unique_ptr<client::Driver> MakeDriver() {
      client::DriverOptions opts;
      opts.enclave_policy.trusted_author_id = image.AuthorId();
      return std::make_unique<client::Driver>(db.get(), &registry,
                                              hgs->signing_public(), opts);
    }
  };

  static tpcc::TpccConfig SmallConfig() {
    tpcc::TpccConfig config;
    config.warehouses = 1;
    config.customers_per_district = 12;
    config.districts_per_warehouse = 3;
    config.items = 40;
    config.initial_orders_per_district = 6;
    config.encryption = tpcc::Encryption::kPlaintext;
    return config;
  }

  /// Loads the schema/data and runs `txns` deterministic transactions on one
  /// terminal; returns scalar fingerprints of the final database state.
  static std::vector<double> RunAndFingerprint(Instance* inst,
                                               const tpcc::TpccConfig& config,
                                               int txns) {
    auto driver = inst->MakeDriver();
    tpcc::TpccLoader loader(driver.get(), config);
    Status schema = loader.CreateSchema();
    EXPECT_TRUE(schema.ok()) << schema.ToString();
    Status load = loader.Load();
    EXPECT_TRUE(load.ok()) << load.ToString();
    tpcc::TpccTerminal terminal(driver.get(), config, /*seed=*/77);
    for (int i = 0; i < txns; ++i) {
      Status st = terminal.RunOne();
      EXPECT_TRUE(st.ok()) << "txn " << i << ": " << st.ToString();
    }
    std::vector<double> fp;
    for (const char* q :
         {"SELECT SUM(D_YTD) FROM District", "SELECT SUM(D_NEXT_O_ID) FROM District",
          "SELECT SUM(W_YTD) FROM Warehouse", "SELECT COUNT(*) FROM Orders",
          "SELECT COUNT(*) FROM OrderLine", "SELECT COUNT(*) FROM NewOrder",
          "SELECT COUNT(*) FROM History", "SELECT SUM(O_ID) FROM Orders"}) {
      auto rows = driver->Query(q);
      EXPECT_TRUE(rows.ok()) << q << ": " << rows.status().ToString();
      if (!rows.ok() || rows->rows.empty()) {
        fp.push_back(-1);
        continue;
      }
      const types::Value& v = rows->rows[0][0];
      fp.push_back(v.AsDouble());
    }
    return fp;
  }
};

/// Same seed, same workload: a pool far smaller than the data must produce a
/// byte-identical final state to the unbounded run (the tentpole's "TPC-C
/// correct at scale exceeding pool size" acceptance, sized for tier-1).
TEST_F(PagedTpccTest, TinyPoolMatchesUnboundedRun) {
  tpcc::TpccConfig config = SmallConfig();
  Instance paged(/*pool_pages=*/2 * BufferPool::kMinPages);
  Instance unbounded(/*pool_pages=*/0);

  std::vector<double> fp_paged = RunAndFingerprint(&paged, config, 40);
  std::vector<double> fp_unbounded = RunAndFingerprint(&unbounded, config, 40);
  EXPECT_EQ(fp_paged, fp_unbounded);

  server::DatabaseStats stats = paged.db->Stats();
  EXPECT_GT(stats.pool_misses, 0u);
  EXPECT_GT(stats.pool_evictions, 0u) << "pool did not actually page";
  EXPECT_GT(stats.pool_hits, stats.pool_misses);  // locality still wins
}

/// The verify.sh --large-data lane: TPC-C at a scale whose working set is a
/// large multiple of the pool, with concurrent terminals. Self-skips unless
/// AEDB_RUN_LARGE_DATA=1 (too heavy for tier-1).
TEST_F(PagedTpccTest, LargeDataTpccExceedsPoolAndStaysCorrect) {
  const char* run = std::getenv("AEDB_RUN_LARGE_DATA");
  if (run == nullptr || std::string(run) != "1") {
    GTEST_SKIP() << "set AEDB_RUN_LARGE_DATA=1 to run (verify.sh --large-data)";
  }
  tpcc::TpccConfig config;
  config.warehouses = 2;
  config.customers_per_district = 40;
  config.districts_per_warehouse = 8;
  config.items = 200;
  config.initial_orders_per_district = 12;
  config.encryption = tpcc::Encryption::kPlaintext;

  Instance paged(/*pool_pages=*/2 * BufferPool::kMinPages);
  std::vector<double> fp_paged = RunAndFingerprint(&paged, config, 150);
  server::DatabaseStats stats = paged.db->Stats();
  EXPECT_GT(stats.pool_evictions, 1000u)
      << "working set not actually exceeding the pool";

  Instance unbounded(/*pool_pages=*/0);
  std::vector<double> fp_unbounded = RunAndFingerprint(&unbounded, config, 150);
  EXPECT_EQ(fp_paged, fp_unbounded);

  // Concurrency smoke at the same scale: 4 terminals, nothing hard-errors,
  // and commits amortize over fsync-free in-memory WAL barriers cleanly.
  Instance concurrent(/*pool_pages=*/2 * BufferPool::kMinPages);
  {
    auto loader_driver = concurrent.MakeDriver();
    tpcc::TpccLoader loader(loader_driver.get(), config);
    ASSERT_TRUE(loader.CreateSchema().ok());
    ASSERT_TRUE(loader.Load().ok());
  }
  tpcc::BenchcraftResult result = tpcc::RunBenchcraftCount(
      [&] { return concurrent.MakeDriver(); }, config, /*threads=*/4,
      /*target_committed=*/300, /*deadline_seconds=*/120);
  EXPECT_TRUE(result.first_error.empty()) << result.first_error;
  EXPECT_GE(result.committed, 300u);
  EXPECT_GT(concurrent.db->Stats().pool_evictions, 0u);
}

/// Shared-nothing pool isolation: every shard owns a private buffer pool, so
/// driving one shard far past its pool capacity must never evict (or disturb)
/// another shard's frames — the cold shard stays eviction-free and its data
/// stays readable and correct throughout.
TEST_F(PagedTpccTest, ShardedPoolsEvictIndependently) {
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("shard-pool-author")));
  crypto::RsaPrivateKey author_key = crypto::GenerateRsaKey(1024, &drbg);
  enclave::EnclaveImage image = enclave::EnclaveImage::MakeEsImage(1, author_key);
  attestation::HostGuardianService hgs;

  server::ShardedOptions sopts;
  sopts.shards = 2;
  sopts.base.engine.pool_pages = BufferPool::kMinPages;
  sopts.base.engine.group_commit_window_us = 100;
  auto sharded =
      std::make_unique<server::ShardedDatabase>(std::move(sopts), &hgs, &image);
  for (uint32_t i = 0; i < sharded->shard_count(); ++i) {
    hgs.RegisterTcgLog(sharded->shard(i)->platform()->tcg_log());
  }
  ASSERT_TRUE(sharded->Open().ok());

  keys::KeyProviderRegistry registry;
  client::DriverOptions dopts;
  dopts.enclave_policy.trusted_author_id = image.AuthorId();
  client::Driver driver(sharded.get(), &registry, hgs.signing_public(), dopts);

  ASSERT_TRUE(
      driver.ExecuteDdl("CREATE TABLE Ledger (W_ID INT, SEQ INT, PAD VARCHAR)")
          .ok());

  // Warehouse 2 lives on shard 1: a small resident set that fits its pool.
  const std::string pad(256, 'x');
  for (int i = 0; i < 6; ++i) {
    auto r = driver.Query(
        "INSERT INTO Ledger (W_ID, SEQ, PAD) VALUES (@w, @s, @p)",
        {{"w", types::Value::Int32(2)},
         {"s", types::Value::Int32(i)},
         {"p", types::Value::String(pad)}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  const uint64_t cold_evictions_before =
      sharded->shard(1)->Stats().pool_evictions;

  // Warehouse 1 lives on shard 0: hammer it until its working set is many
  // times the pool and eviction is certain.
  for (int i = 0; i < 600; ++i) {
    auto r = driver.Query(
        "INSERT INTO Ledger (W_ID, SEQ, PAD) VALUES (@w, @s, @p)",
        {{"w", types::Value::Int32(1)},
         {"s", types::Value::Int32(i)},
         {"p", types::Value::String(pad)}});
    ASSERT_TRUE(r.ok()) << "insert " << i << ": " << r.status().ToString();
  }
  auto scan = driver.Query("SELECT COUNT(*) FROM Ledger WHERE W_ID = @w",
                           {{"w", types::Value::Int32(1)}});
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->rows[0][0].i64(), 600);

  EXPECT_GT(sharded->shard(0)->Stats().pool_evictions, 0u)
      << "hot shard never exceeded its pool — grow the workload";
  EXPECT_EQ(sharded->shard(1)->Stats().pool_evictions, cold_evictions_before)
      << "hot shard's churn evicted frames from the cold shard's pool";

  // And the cold shard's rows are still intact, through the router and
  // against the shard engine directly.
  auto cold = driver.Query("SELECT COUNT(*) FROM Ledger WHERE W_ID = @w",
                           {{"w", types::Value::Int32(2)}});
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->rows[0][0].i64(), 6);
  auto direct = sharded->shard(1)->Execute(
      "SELECT SEQ, PAD FROM Ledger WHERE W_ID = @w ORDER BY SEQ",
      {types::Value::Int32(2)});
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_EQ(direct->rows.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(direct->rows[i][0].i32(), i);
    EXPECT_EQ(direct->rows[i][1].str(), pad);
  }
}

}  // namespace
}  // namespace aedb::storage
