#include <gtest/gtest.h>

#include "attestation/attestation.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "keys/key_metadata.h"
#include "keys/key_provider.h"

namespace aedb::attestation {
namespace {

// End-to-end attestation fixture: platform + HGS + enclave + "client".
class AttestationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("attest-test")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    platform_ = std::make_unique<enclave::VbsPlatform>("good-boot", 5);
    image_ = enclave::EnclaveImage::MakeEsImage(7, author_key_);
    auto loaded = platform_->LoadEnclave(image_, enclave::EnclaveConfig{});
    ASSERT_TRUE(loaded.ok());
    enclave_ = std::move(loaded).value();
    hgs_.RegisterTcgLog(platform_->tcg_log());

    client_dh_ = crypto::GenerateDhKeyPair(&drbg);
    policy_.trusted_author_id = image_.AuthorId();
    policy_.min_enclave_version = 7;
    policy_.min_platform_version = 5;
  }

  // What SQL Server does at sp_describe time: fetch cert + enclave response.
  void RunServerSide() {
    auto cert = hgs_.Attest(platform_->tcg_log(), platform_->host_signing_public());
    ASSERT_TRUE(cert.ok()) << cert.status().ToString();
    cert_ = *cert;
    auto resp = enclave_->CreateSession(crypto::DhPublicKeyBytes(client_dh_));
    ASSERT_TRUE(resp.ok());
    response_ = *resp;
  }

  Result<Bytes> Verify() {
    AttestationVerifier verifier(hgs_.signing_public(), policy_);
    return verifier.VerifyAndDeriveSecret(cert_, response_,
                                          client_dh_.private_key,
                                          crypto::DhPublicKeyBytes(client_dh_));
  }

  crypto::RsaPrivateKey author_key_;
  std::unique_ptr<enclave::VbsPlatform> platform_;
  enclave::EnclaveImage image_;
  std::unique_ptr<enclave::Enclave> enclave_;
  HostGuardianService hgs_;
  crypto::DhKeyPair client_dh_;
  EnclavePolicy policy_;
  HealthCertificate cert_;
  enclave::AttestationResponse response_;
};

TEST_F(AttestationTest, FullChainSucceeds) {
  RunServerSide();
  auto secret = Verify();
  ASSERT_TRUE(secret.ok()) << secret.status().ToString();
  EXPECT_EQ(secret->size(), 32u);
  // Both ends hold the same secret: a message sealed by the client opens in
  // the enclave.
  crypto::CellCodec channel(*secret);
  Bytes plain;
  PutU64(&plain, 0);
  PutU32(&plain, 0);  // zero CEKs: still exercises the channel + nonce
  Status st = enclave_->InstallCeks(
      response_.session_id, 0,
      channel.Encrypt(plain, crypto::EncryptionScheme::kRandomized));
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(AttestationTest, HgsRefusesUnknownBootChain) {
  enclave::VbsPlatform rogue("tampered-boot", 5);
  auto cert = hgs_.Attest(rogue.tcg_log(), rogue.host_signing_public());
  EXPECT_TRUE(cert.status().IsSecurityError());
}

TEST_F(AttestationTest, ForgedHealthCertificateRejected) {
  RunServerSide();
  // A rogue "HGS" signs the same payload with a different key.
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("rogue-hgs")));
  crypto::RsaPrivateKey rogue = crypto::GenerateRsaKey(1024, &drbg);
  cert_.hgs_signature = crypto::Pkcs1Sign(rogue, cert_.SignedPayload());
  EXPECT_TRUE(Verify().status().IsSecurityError());
}

TEST_F(AttestationTest, TamperedReportRejected) {
  RunServerSide();
  response_.report_bytes[0] ^= 1;
  EXPECT_TRUE(Verify().status().IsSecurityError());
}

TEST_F(AttestationTest, UntrustedAuthorRejected) {
  RunServerSide();
  policy_.trusted_author_id = crypto::SecureRandom(32);
  EXPECT_TRUE(Verify().status().IsSecurityError());
}

TEST_F(AttestationTest, StaleEnclaveVersionRejected) {
  RunServerSide();
  policy_.min_enclave_version = 8;  // simulates a client post-security-update
  EXPECT_TRUE(Verify().status().IsSecurityError());
}

TEST_F(AttestationTest, StalePlatformVersionRejected) {
  RunServerSide();
  policy_.min_platform_version = 6;
  EXPECT_TRUE(Verify().status().IsSecurityError());
}

TEST_F(AttestationTest, SwappedEnclaveKeyRejected) {
  RunServerSide();
  // MITM SQL substitutes its own "enclave" public key.
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("mitm")));
  crypto::RsaPrivateKey mitm = crypto::GenerateRsaKey(1024, &drbg);
  response_.enclave_public_key = mitm.pub.Serialize();
  Bytes blob = response_.enclave_dh_public;
  Bytes cpk = crypto::DhPublicKeyBytes(client_dh_);
  blob.insert(blob.end(), cpk.begin(), cpk.end());
  response_.dh_signature = crypto::Pkcs1Sign(mitm, blob);
  EXPECT_TRUE(Verify().status().IsSecurityError());
}

TEST_F(AttestationTest, SwappedDhKeyRejected) {
  RunServerSide();
  // MITM swaps the enclave's DH public for its own (unsigned) one.
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("mitm-dh")));
  crypto::DhKeyPair mitm = crypto::GenerateDhKeyPair(&drbg);
  response_.enclave_dh_public = crypto::DhPublicKeyBytes(mitm);
  EXPECT_TRUE(Verify().status().IsSecurityError());
}

TEST_F(AttestationTest, HealthCertificateSerializationRoundTrip) {
  RunServerSide();
  Bytes ser = cert_.Serialize();
  auto back = HealthCertificate::Deserialize(ser);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->host_signing_public, cert_.host_signing_public);
  EXPECT_EQ(back->hgs_signature, cert_.hgs_signature);
}

// --- key metadata tests (driver-side security checks) ---

class KeyMetadataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(vault_.CreateKey(kPath, 1024).ok());
    auto cmk = keys::KeyTools::CreateCmk(&vault_, "MyCMK", kPath, true);
    ASSERT_TRUE(cmk.ok());
    cmk_ = *cmk;
  }

  static constexpr const char* kPath = "https://vault.example/keys/cmk1";
  keys::InMemoryKeyVault vault_;
  keys::CmkInfo cmk_;
};

TEST_F(KeyMetadataTest, CmkSignatureVerifies) {
  EXPECT_TRUE(keys::KeyTools::VerifyCmk(&vault_, cmk_).ok());
}

TEST_F(KeyMetadataTest, FlippedEnclaveBitDetected) {
  // The attack from §2.2: SQL flips ENCLAVE_COMPUTATIONS on the metadata.
  keys::CmkInfo tampered = cmk_;
  tampered.enclave_enabled = false;
  EXPECT_TRUE(keys::KeyTools::VerifyCmk(&vault_, tampered).IsSecurityError());
}

TEST_F(KeyMetadataTest, CekRoundTripThroughProvider) {
  Bytes plaintext_cek;
  auto cek = keys::KeyTools::CreateCek(&vault_, cmk_, "MyCEK", &plaintext_cek);
  ASSERT_TRUE(cek.ok());
  EXPECT_EQ(plaintext_cek.size(), 32u);
  ASSERT_EQ(cek->values.size(), 1u);
  EXPECT_TRUE(
      keys::KeyTools::VerifyCekValue(&vault_, cmk_, "MyCEK", cek->values[0]).ok());
  auto unwrapped = vault_.UnwrapKey(kPath, cek->values[0].encrypted_value);
  ASSERT_TRUE(unwrapped.ok());
  EXPECT_EQ(*unwrapped, plaintext_cek);
}

TEST_F(KeyMetadataTest, TamperedCekValueDetected) {
  Bytes plaintext_cek;
  auto cek = keys::KeyTools::CreateCek(&vault_, cmk_, "MyCEK", &plaintext_cek);
  ASSERT_TRUE(cek.ok());
  keys::CekValue bad = cek->values[0];
  bad.encrypted_value[0] ^= 1;
  EXPECT_TRUE(keys::KeyTools::VerifyCekValue(&vault_, cmk_, "MyCEK", bad)
                  .IsSecurityError());
}

TEST_F(KeyMetadataTest, CmkRotationAddsSecondValue) {
  Bytes plaintext_cek;
  auto cek = keys::KeyTools::CreateCek(&vault_, cmk_, "MyCEK", &plaintext_cek);
  ASSERT_TRUE(cek.ok());
  ASSERT_TRUE(vault_.CreateKey("https://vault.example/keys/cmk2", 1024).ok());
  auto cmk2 = keys::KeyTools::CreateCmk(&vault_, "MyCMK2",
                                        "https://vault.example/keys/cmk2", true);
  ASSERT_TRUE(cmk2.ok());
  keys::CekInfo info = *cek;
  ASSERT_TRUE(keys::KeyTools::AddCekValueForCmkRotation(&vault_, *cmk2,
                                                        plaintext_cek, &info)
                  .ok());
  ASSERT_EQ(info.values.size(), 2u);
  // Both values unwrap to the same material.
  auto u1 = vault_.UnwrapKey(kPath, info.values[0].encrypted_value);
  auto u2 = vault_.UnwrapKey("https://vault.example/keys/cmk2",
                             info.values[1].encrypted_value);
  ASSERT_TRUE(u1.ok());
  ASSERT_TRUE(u2.ok());
  EXPECT_EQ(*u1, *u2);
}

TEST_F(KeyMetadataTest, MetadataSerializationRoundTrip) {
  auto back = keys::CmkInfo::Deserialize(cmk_.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name, cmk_.name);
  EXPECT_EQ(back->key_path, cmk_.key_path);
  EXPECT_EQ(back->enclave_enabled, cmk_.enclave_enabled);
  EXPECT_EQ(back->signature, cmk_.signature);

  Bytes pt;
  auto cek = keys::KeyTools::CreateCek(&vault_, cmk_, "MyCEK", &pt);
  ASSERT_TRUE(cek.ok());
  auto cek_back = keys::CekInfo::Deserialize(cek->Serialize());
  ASSERT_TRUE(cek_back.ok());
  EXPECT_EQ(cek_back->name, "MyCEK");
  ASSERT_EQ(cek_back->values.size(), 1u);
  EXPECT_EQ(cek_back->values[0].encrypted_value, cek->values[0].encrypted_value);
}

TEST(KeyProviderRegistryTest, RegisterAndFind) {
  keys::KeyProviderRegistry registry;
  keys::InMemoryKeyVault vault("CUSTOM_PROVIDER");
  ASSERT_TRUE(registry.Register(&vault).ok());
  EXPECT_TRUE(registry.Register(&vault).code() ==
              StatusCode::kAlreadyExists);
  auto found = registry.Find("CUSTOM_PROVIDER");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, &vault);
  EXPECT_TRUE(registry.Find("NOPE").status().IsNotFound());
}

}  // namespace
}  // namespace aedb::attestation
