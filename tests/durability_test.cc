#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "fault/fault.h"
#include "server/database.h"
#include "server/router.h"
#include "storage/btree.h"
#include "storage/checkpoint.h"
#include "storage/engine.h"
#include "storage/fsio.h"
#include "storage/torture.h"
#include "storage/wal.h"

namespace aedb {
namespace {

using server::Database;
using server::ServerOptions;
using storage::BinaryComparator;
using storage::BTree;
using storage::CheckpointImage;
using storage::LogRecord;
using storage::LogRecordType;
using storage::Rid;
using storage::StorageEngine;
using storage::Wal;
using storage::WalLoadResult;
using types::Value;

Bytes B(std::string_view s) { return Slice(s).ToBytes(); }

/// A self-cleaning scratch directory for durable-state tests.
class TempDir {
 public:
  TempDir() {
    char templ[] = "/tmp/aedb_durability_XXXXXX";
    char* made = mkdtemp(templ);
    EXPECT_NE(made, nullptr) << strerror(errno);
    path_ = made == nullptr ? "/tmp" : made;
  }
  ~TempDir() { RemoveTree(path_); }

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

  /// Every regular file currently under the directory, recursively — the
  /// ciphertext-at-rest scan must cover the pages/ spill directory too, or an
  /// evicted plaintext page would slip past it.
  std::vector<std::string> Files() const {
    std::vector<std::string> out;
    ListTree(path_, &out);
    return out;
  }

 private:
  static void ListTree(const std::string& dir, std::vector<std::string>* out) {
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) return;
    while (struct dirent* e = readdir(d)) {
      if (std::strcmp(e->d_name, ".") == 0 || std::strcmp(e->d_name, "..") == 0)
        continue;
      std::string child = dir + "/" + e->d_name;
      struct stat st;
      if (lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        ListTree(child, out);
      } else {
        out->push_back(child);
      }
    }
    closedir(d);
  }

  static void RemoveTree(const std::string& dir) {
    DIR* d = opendir(dir.c_str());
    if (d != nullptr) {
      while (struct dirent* e = readdir(d)) {
        if (std::strcmp(e->d_name, ".") == 0 ||
            std::strcmp(e->d_name, "..") == 0)
          continue;
        std::string child = dir + "/" + e->d_name;
        struct stat st;
        if (lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
          RemoveTree(child);
        } else {
          unlink(child.c_str());
        }
      }
      closedir(d);
    }
    rmdir(dir.c_str());
  }

  std::string path_;
};

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Global().Reset(); }
  void TearDown() override { fault::FaultRegistry::Global().Reset(); }
};

// ===========================================================================
// File-backed WAL
// ===========================================================================

LogRecord MakeRecord(uint64_t txn, LogRecordType type, std::string_view body) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = type;
  rec.object_id = 7;
  rec.payload1 = B(body);
  return rec;
}

TEST_F(DurabilityTest, FileWalSurvivesReopen) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  {
    Wal wal;
    auto attached = wal.AttachFile(path);
    ASSERT_TRUE(attached.ok()) << attached.status().ToString();
    EXPECT_TRUE(wal.file_backed());
    EXPECT_TRUE(attached->records.empty());
    ASSERT_TRUE(wal.Append(MakeRecord(1, LogRecordType::kBegin, "")).ok());
    ASSERT_TRUE(
        wal.Append(MakeRecord(1, LogRecordType::kHeapInsert, "row-a")).ok());
    ASSERT_TRUE(wal.Append(MakeRecord(1, LogRecordType::kCommit, "")).ok());
    ASSERT_TRUE(wal.Sync().ok());
    EXPECT_GE(wal.fsyncs(), 1u);
    EXPECT_EQ(wal.wal_bytes(), wal.RawBytes().size());
  }
  // A brand-new Wal over the same file adopts the log: same records, and the
  // next LSN continues past the durable tail instead of restarting at 1.
  Wal reopened;
  auto loaded = reopened.AttachFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->records.size(), 3u);
  EXPECT_FALSE(loaded->torn_tail);
  EXPECT_EQ(loaded->records[1].payload1, B("row-a"));
  EXPECT_EQ(loaded->records[2].type, LogRecordType::kCommit);
  EXPECT_GT(reopened.next_lsn(), loaded->records[2].lsn);
}

TEST_F(DurabilityTest, FileWalTornTailIsDroppedAndPhysicallyTruncated) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  size_t intact_bytes = 0;
  {
    Wal wal;
    ASSERT_TRUE(wal.AttachFile(path).ok());
    ASSERT_TRUE(wal.Append(MakeRecord(1, LogRecordType::kBegin, "")).ok());
    ASSERT_TRUE(
        wal.Append(MakeRecord(1, LogRecordType::kHeapInsert, "kept")).ok());
    ASSERT_TRUE(wal.Sync().ok());
    intact_bytes = wal.wal_bytes();
  }
  // Simulate a crash mid-append: garbage (a torn frame) after the intact
  // prefix.
  {
    int fd = open(path.c_str(), O_WRONLY | O_APPEND);
    ASSERT_GE(fd, 0);
    const char torn[] = "\x40\x00\x00\x00\xde\xad\xbe\xef half a frame";
    ASSERT_EQ(write(fd, torn, sizeof(torn)), (ssize_t)sizeof(torn));
    close(fd);
  }
  Wal reopened;
  auto loaded = reopened.AttachFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->torn_tail);
  ASSERT_EQ(loaded->records.size(), 2u);
  EXPECT_GT(reopened.torn_bytes_dropped(), 0u);
  // The tail was ftruncated away, not just ignored: the file is back to the
  // intact prefix, so the next append lands on a clean boundary.
  struct stat st;
  ASSERT_EQ(stat(path.c_str(), &st), 0);
  EXPECT_EQ(static_cast<size_t>(st.st_size), intact_bytes);
  ASSERT_TRUE(
      reopened.Append(MakeRecord(2, LogRecordType::kHeapInsert, "after")).ok());
  Wal third;
  auto again = third.AttachFile(path);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->torn_tail);
  ASSERT_EQ(again->records.size(), 3u);
  EXPECT_EQ(again->records[2].payload1, B("after"));
}

TEST_F(DurabilityTest, FileWalSyncFaultSkipsFsync) {
  TempDir dir;
  Wal wal;
  ASSERT_TRUE(wal.AttachFile(dir.File("wal.log")).ok());
  const uint64_t before = wal.fsyncs();
  fault::FaultSpec spec;
  spec.trigger = fault::FaultSpec::Trigger::kOneShot;
  fault::FaultRegistry::Global().Arm("wal/sync", spec);
  EXPECT_FALSE(wal.Sync().ok());
  EXPECT_EQ(wal.fsyncs(), before);  // the failed sync must not have synced
  EXPECT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.fsyncs(), before + 1);
}

TEST_F(DurabilityTest, FailedTruncationRewriteIsObservableAndNonFatal) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  Wal wal;
  ASSERT_TRUE(wal.AttachFile(path).ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, LogRecordType::kBegin, "")).ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, LogRecordType::kHeapInsert, "a")).ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, LogRecordType::kCommit, "")).ok());
  ASSERT_TRUE(wal.Sync().ok());
  const uint64_t cut = wal.next_lsn();

  // The truncation's atomic rewrite dies before its rename. The old inode —
  // a superset of the trimmed log — is still live under the old append fd,
  // so durability is intact; the disk/mirror divergence must be gauged.
  fault::FaultSpec spec;
  spec.trigger = fault::FaultSpec::Trigger::kOneShot;
  fault::FaultRegistry::Global().Arm("fsio/pre_rename", spec);
  EXPECT_FALSE(wal.TruncateBefore(cut).ok());
  EXPECT_EQ(wal.file_errors(), 1u);
  EXPECT_FALSE(wal.poisoned());
  EXPECT_TRUE(wal.file_backed());

  // The log keeps working: appends and fsyncs still reach the file, and a
  // reopen sees the never-truncated prefix plus the new tail.
  ASSERT_TRUE(wal.Append(MakeRecord(2, LogRecordType::kBegin, "")).ok());
  ASSERT_TRUE(wal.Sync().ok());
  Wal reopened;
  auto loaded = reopened.AttachFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->torn_tail);
  ASSERT_EQ(loaded->records.size(), 4u);
  EXPECT_EQ(loaded->records.back().type, LogRecordType::kBegin);
}

// ===========================================================================
// Checkpoint image serialization
// ===========================================================================

TEST_F(DurabilityTest, CheckpointImageRoundTrips) {
  CheckpointImage img;
  img.checkpoint_lsn = 42;
  img.next_txn_id = 17;
  CheckpointImage::TableImage table;
  table.table_id = 3;
  table.heap = B("opaque heap page bytes");
  img.tables.push_back(table);
  CheckpointImage::IndexImage index;
  index.index_id = 9;
  index.invalid = true;
  index.entries.emplace_back(B("key-1"), Rid{0, 5});
  index.entries.emplace_back(B("key-2"), Rid{1, 0});
  img.indexes.push_back(index);

  Bytes wire = img.Serialize();
  auto back = CheckpointImage::Deserialize(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->checkpoint_lsn, 42u);
  EXPECT_EQ(back->next_txn_id, 17u);
  ASSERT_EQ(back->tables.size(), 1u);
  EXPECT_EQ(back->tables[0].table_id, 3u);
  EXPECT_EQ(back->tables[0].heap, B("opaque heap page bytes"));
  ASSERT_EQ(back->indexes.size(), 1u);
  EXPECT_TRUE(back->indexes[0].invalid);
  ASSERT_EQ(back->indexes[0].entries.size(), 2u);
  EXPECT_EQ(back->indexes[0].entries[1].first, B("key-2"));
  EXPECT_EQ(back->indexes[0].entries[0].second.Encode(), (Rid{0, 5}).Encode());
}

TEST_F(DurabilityTest, CheckpointImageDetectsCorruptionAndTruncation) {
  CheckpointImage img;
  img.checkpoint_lsn = 1;
  Bytes wire = img.Serialize();
  for (size_t i = 0; i < wire.size(); i += 3) {
    Bytes bad = wire;
    bad[i] ^= 0x5A;
    EXPECT_FALSE(CheckpointImage::Deserialize(bad).ok())
        << "bit flip at byte " << i << " went undetected";
  }
  for (size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(CheckpointImage::Deserialize(Slice(wire.data(), n)).ok())
        << "accepted a " << n << "-byte truncation";
  }
}

// ===========================================================================
// Engine checkpoint capture + recovery from base
// ===========================================================================

constexpr uint32_t kTable = 1;
constexpr uint32_t kIndex = 2;

std::unique_ptr<StorageEngine> MakeCatalogedEngine() {
  auto engine = std::make_unique<StorageEngine>();
  EXPECT_TRUE(engine->CreateTable(kTable).ok());
  EXPECT_TRUE(engine
                  ->CreateIndex(kIndex, kTable,
                                std::make_unique<BinaryComparator>(),
                                /*unique=*/false)
                  .ok());
  return engine;
}

Status CommitRow(StorageEngine* engine, const std::string& row,
                 const std::string& key) {
  uint64_t txn = engine->Begin();
  Rid rid;
  AEDB_ASSIGN_OR_RETURN(rid, engine->HeapInsert(txn, kTable, B(row)));
  AEDB_RETURN_IF_ERROR(engine->IndexInsert(txn, kIndex, B(key), rid));
  return engine->Commit(txn);
}

TEST_F(DurabilityTest, CommitRecordIsAppendedBeforeTheDurabilitySync) {
  auto engine = MakeCatalogedEngine();
  uint64_t txn = engine->Begin();
  ASSERT_TRUE(engine->HeapInsert(txn, kTable, B("row")).ok());
  // Fail the commit-point fsync. The commit record must ALREADY be in the
  // log when the sync runs — syncing first and appending after would ack
  // commits whose record was never fsynced — so the failed commit leaves
  // [ops.., kCommit, CLRs.., kAbort] behind.
  fault::FaultSpec spec;
  spec.trigger = fault::FaultSpec::Trigger::kOneShot;
  fault::FaultRegistry::Global().Arm("wal/sync", spec);
  Status st = engine->Commit(txn);
  EXPECT_TRUE(st.IsTransactionAborted()) << st.ToString();
  int commit_at = -1;
  int abort_at = -1;
  std::vector<LogRecord> log = engine->wal().Snapshot();
  for (size_t i = 0; i < log.size(); ++i) {
    if (log[i].txn_id != txn) continue;
    if (log[i].type == LogRecordType::kCommit) commit_at = static_cast<int>(i);
    if (log[i].type == LogRecordType::kAbort) abort_at = static_cast<int>(i);
  }
  ASSERT_GE(commit_at, 0) << "kCommit was not appended before the sync";
  ASSERT_GE(abort_at, 0);
  EXPECT_LT(commit_at, abort_at);
  // Redo of that suffix nets the txn to zero: recovery agrees with the
  // TransactionAborted ack even though a kCommit record exists.
  ASSERT_TRUE(engine->Recover().ok());
  size_t live = 0;
  engine->table(kTable)->Scan([&](const Rid&, Slice) {
    ++live;
    return true;
  });
  EXPECT_EQ(live, 0u);
}

TEST_F(DurabilityTest, RecoveryFromCheckpointPlusWalTail) {
  auto engine = MakeCatalogedEngine();
  ASSERT_TRUE(CommitRow(engine.get(), "baked-1", "a").ok());
  ASSERT_TRUE(CommitRow(engine.get(), "baked-2", "b").ok());

  auto captured = engine->CaptureCheckpoint(std::chrono::milliseconds(500));
  ASSERT_TRUE(captured.ok()) << captured.status().ToString();
  const uint64_t horizon = (*captured)->checkpoint_lsn;
  EXPECT_EQ(horizon, engine->wal().next_lsn());

  // Post-checkpoint tail: one more committed row, one loser in flight.
  ASSERT_TRUE(CommitRow(engine.get(), "tail-3", "c").ok());
  uint64_t loser = engine->Begin();
  ASSERT_TRUE(engine->HeapInsert(loser, kTable, B("loser")).ok());

  // Checkpoint publish + log truncation, then a crash: rebuild a fresh
  // engine from (serialized image, truncated log) exactly as Open() would.
  ASSERT_TRUE(engine->wal().TruncateBefore(horizon).ok());
  Bytes image_wire = (*captured)->Serialize();
  Bytes log_image = engine->wal().RawBytes();

  auto fresh = MakeCatalogedEngine();
  auto base = CheckpointImage::Deserialize(image_wire);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  fresh->SetCheckpointBase(
      std::make_shared<const CheckpointImage>(std::move(base).value()));
  fresh->wal().LoadImage(log_image);
  auto recovered = fresh->Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->from_checkpoint_lsn, horizon);

  // All three committed rows live, the loser vanished, the index sees
  // exactly the three committed keys.
  std::vector<std::string> rows;
  fresh->table(kTable)->Scan([&](const Rid&, Slice row) {
    rows.emplace_back(row.ToString());
    return true;
  });
  std::sort(rows.begin(), rows.end());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], "baked-1");
  EXPECT_EQ(rows[1], "baked-2");
  EXPECT_EQ(rows[2], "tail-3");
  EXPECT_EQ(fresh->index_tree(kIndex)->size(), 3u);

  // New transactions must not reuse LSNs or txn ids from before the crash.
  EXPECT_GE(fresh->wal().next_lsn(), horizon);
  uint64_t next = fresh->Begin();
  EXPECT_GE(next, (*captured)->next_txn_id);
}

TEST_F(DurabilityTest, CheckpointRefusedUntilQuiescent) {
  auto engine = MakeCatalogedEngine();
  uint64_t txn = engine->Begin();
  ASSERT_TRUE(engine->HeapInsert(txn, kTable, B("open")).ok());
  auto refused = engine->CaptureCheckpoint(std::chrono::milliseconds(50));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine->Commit(txn).ok());
  EXPECT_TRUE(engine->CaptureCheckpoint(std::chrono::milliseconds(50)).ok());
}

TEST_F(DurabilityTest, RecoveryIsIdempotentAfterMidRecoveryCrash) {
  auto engine = MakeCatalogedEngine();
  ASSERT_TRUE(CommitRow(engine.get(), "row-1", "a").ok());
  ASSERT_TRUE(CommitRow(engine.get(), "row-2", "b").ok());
  Bytes log_image = engine->wal().RawBytes();

  auto fresh = MakeCatalogedEngine();
  fresh->wal().LoadImage(log_image);
  // First recovery attempt dies at the replay fault point (the in-process
  // stand-in for kill -9 mid-recovery); the second must succeed and land on
  // the identical committed state.
  fault::FaultSpec spec;
  spec.trigger = fault::FaultSpec::Trigger::kOneShot;
  fault::FaultRegistry::Global().Arm("recovery/replay", spec);
  EXPECT_FALSE(fresh->Recover().ok());

  auto second = fresh->Recover();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  std::vector<std::string> rows;
  fresh->table(kTable)->Scan([&](const Rid&, Slice row) {
    rows.emplace_back(row.ToString());
    return true;
  });
  std::sort(rows.begin(), rows.end());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "row-1");
  EXPECT_EQ(rows[1], "row-2");
  EXPECT_EQ(fresh->index_tree(kIndex)->size(), 2u);
}

// ===========================================================================
// The crash-point torture matrix on a file-backed WAL (the acceptance bar:
// RunWalCrashTorture stays exact when every cut is verified through real
// files instead of in-memory images).
// ===========================================================================

TEST_F(DurabilityTest, WalCrashTortureExactOnFileBackedWal) {
  TempDir dir;
  int counter = 0;
  auto factory = [&dir, &counter]() -> std::unique_ptr<StorageEngine> {
    auto engine = MakeCatalogedEngine();
    auto attached =
        engine->wal().AttachFile(dir.File("wal-" + std::to_string(counter++)));
    EXPECT_TRUE(attached.ok()) << attached.status().ToString();
    return engine;
  };
  auto workload = [](StorageEngine* engine) -> Status {
    for (int round = 0; round < 5; ++round) {
      uint64_t txn = engine->Begin();
      Rid rid;
      AEDB_ASSIGN_OR_RETURN(
          rid, engine->HeapInsert(txn, kTable, B("r" + std::to_string(round))));
      AEDB_RETURN_IF_ERROR(
          engine->IndexInsert(txn, kIndex, B("k" + std::to_string(round)), rid));
      if (round % 2 == 1) {
        AEDB_RETURN_IF_ERROR(engine->Abort(txn));
      } else {
        AEDB_RETURN_IF_ERROR(engine->Commit(txn));
      }
    }
    uint64_t dangling = engine->Begin();
    return engine->HeapInsert(dangling, kTable, B("in-flight")).status();
  };
  auto report = storage::RunWalCrashTorture(factory, workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_GE(report->crash_points, 15u);
  EXPECT_GE(report->torn_points, 10u);
}

// ===========================================================================
// Database-level durable round trips (data-dir mode)
// ===========================================================================

/// Full-deployment fixture over a durable data dir. The vault (client-side
/// CMK custody) and the seeded attestation identities survive "restarts";
/// everything server-side must come back from disk alone.
class DurableDatabaseTest : public DurabilityTest {
 protected:
  static constexpr const char* kVaultPath = "https://vault.example/keys/cmk1";

  void SetUp() override {
    DurabilityTest::SetUp();
    vault_ = std::make_unique<keys::InMemoryKeyVault>();
    ASSERT_TRUE(vault_->CreateKey(kVaultPath, 1024).ok());
    ASSERT_TRUE(registry_.Register(vault_.get()).ok());
    Bytes seed;
    PutU64(&seed, 4242);
    crypto::HmacDrbg drbg(Slice(seed), Slice(std::string_view("aedb-serverd")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
  }

  /// Boots a server process stand-in over the data dir and returns a driver
  /// wired to it. Fresh HGS + enclave per call: a restart loses all enclave
  /// state, exactly like the real daemon.
  void Boot(const std::string& data_dir, uint64_t checkpoint_wal_bytes = 0) {
    driver_.reset();
    db_.reset();
    Bytes seed;
    PutU64(&seed, 4242);
    hgs_ = std::make_unique<attestation::HostGuardianService>(Slice(seed));
    ServerOptions opts;
    opts.data_dir = data_dir;
    opts.checkpoint_wal_bytes = checkpoint_wal_bytes;
    db_ = std::make_unique<Database>(opts, hgs_.get(), &image_);
    hgs_->RegisterTcgLog(db_->platform()->tcg_log());
    Status opened = db_->Open();
    ASSERT_TRUE(opened.ok()) << opened.ToString();
    client::DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    driver_ = std::make_unique<client::Driver>(db_.get(), &registry_,
                                               hgs_->signing_public(), dopts);
  }

  void ProvisionAndCreateSchema() {
    ASSERT_TRUE(driver_
                    ->ProvisionCmk("MyCMK", vault_->name(), kVaultPath,
                                   /*enclave_enabled=*/true)
                    .ok());
    ASSERT_TRUE(driver_->ProvisionCek("MyCEK", "MyCMK").ok());
    Status st = driver_->ExecuteDdl(
        "CREATE TABLE Account ("
        "  AcctID INT NOT NULL,"
        "  Branch VARCHAR(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = MyCEK,"
        "    ENCRYPTION_TYPE = Deterministic,"
        "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'),"
        "  AcctBal BIGINT ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = MyCEK,"
        "    ENCRYPTION_TYPE = Randomized,"
        "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'),"
        "  Owner VARCHAR(40) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = MyCEK,"
        "    ENCRYPTION_TYPE = Randomized,"
        "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))");
    ASSERT_TRUE(st.ok()) << st.ToString();
    st = driver_->ExecuteDdl("CREATE INDEX idx_bal ON Account (AcctBal)");
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  void InsertAccount(int id, const std::string& branch, int64_t bal,
                     const std::string& owner) {
    auto r = driver_->Query(
        "INSERT INTO Account (AcctID, Branch, AcctBal, Owner) "
        "VALUES (@id, @branch, @bal, @owner)",
        {{"id", Value::Int32(id)},
         {"branch", Value::String(branch)},
         {"bal", Value::Int64(bal)},
         {"owner", Value::String(owner)}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  /// The secrets every at-rest artifact is scanned for.
  std::vector<std::string> Plaintexts() const {
    return {"Seattle", "Zurich", "SMITH", "BARNES", "WILLOWBY"};
  }

  void LoadAccounts() {
    InsertAccount(1, "Seattle", 100, "SMITH");
    InsertAccount(2, "Zurich", 550, "BARNES");
    InsertAccount(3, "Zurich", 75, "WILLOWBY");
  }

  void ExpectAccountsIntact() {
    auto all = driver_->Query("SELECT AcctID, Branch, Owner FROM Account");
    ASSERT_TRUE(all.ok()) << all.status().ToString();
    EXPECT_EQ(all->rows.size(), 3u);
    // DET equality runs on ciphertext; RND range goes through the enclave
    // (forcing key install + deferred-index resolution after a restart).
    auto det = driver_->Query("SELECT AcctID FROM Account WHERE Branch = @b",
                              {{"b", Value::String("Zurich")}});
    ASSERT_TRUE(det.ok()) << det.status().ToString();
    EXPECT_EQ(det->rows.size(), 2u);
    auto range = driver_->Query("SELECT Owner FROM Account WHERE AcctBal > @x",
                                {{"x", Value::Int64(500)}});
    ASSERT_TRUE(range.ok()) << range.status().ToString();
    ASSERT_EQ(range->rows.size(), 1u);
    EXPECT_EQ(range->rows[0][0].str(), "BARNES");
  }

  std::unique_ptr<keys::InMemoryKeyVault> vault_;
  keys::KeyProviderRegistry registry_;
  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<client::Driver> driver_;
};

TEST_F(DurableDatabaseTest, CleanShutdownRoundTrip) {
  TempDir dir;
  Boot(dir.path());
  EXPECT_FALSE(db_->recovery_info().clean_shutdown);
  ProvisionAndCreateSchema();
  LoadAccounts();
  Status shut = db_->Shutdown();
  ASSERT_TRUE(shut.ok()) << shut.ToString();
  EXPECT_TRUE(storage::fsio::FileExists(dir.File("clean_shutdown")));
  EXPECT_TRUE(storage::fsio::FileExists(dir.File("checkpoint.db")));

  Boot(dir.path());
  const Database::RecoveryInfo& ri = db_->recovery_info();
  EXPECT_TRUE(ri.ran);
  EXPECT_TRUE(ri.clean_shutdown);
  // The final checkpoint drained the log: nothing to replay.
  EXPECT_EQ(ri.wal_records_replayed, 0u);
  EXPECT_GT(ri.from_checkpoint_lsn, 0u);
  EXPECT_GE(ri.ddl_statements_replayed, 4u);  // CMK, CEK, table, index
  // The marker is consumed: a crash AFTER this boot must not claim clean.
  EXPECT_FALSE(storage::fsio::FileExists(dir.File("clean_shutdown")));
  ExpectAccountsIntact();
}

TEST_F(DurableDatabaseTest, DirtyRestartReplaysWalTail) {
  TempDir dir;
  Boot(dir.path());
  ProvisionAndCreateSchema();
  LoadAccounts();
  // No Shutdown(): tear the process stand-in down with the WAL still full,
  // exactly what kill -9 leaves behind.
  driver_.reset();
  db_.reset();

  Boot(dir.path());
  const Database::RecoveryInfo& ri = db_->recovery_info();
  EXPECT_TRUE(ri.ran);
  EXPECT_FALSE(ri.clean_shutdown);
  EXPECT_GT(ri.wal_records_replayed, 0u);
  EXPECT_EQ(ri.from_checkpoint_lsn, 0u);  // never checkpointed
  ExpectAccountsIntact();

  server::DatabaseStats stats = db_->Stats();
  EXPECT_EQ(stats.wal_records_replayed, ri.wal_records_replayed);
  EXPECT_GT(stats.wal_bytes, 0u);
  EXPECT_GT(stats.fsyncs, 0u);
}

TEST_F(DurableDatabaseTest, CheckpointTruncatesWalAndRestartUsesIt) {
  TempDir dir;
  Boot(dir.path());
  ProvisionAndCreateSchema();
  LoadAccounts();
  const uint64_t wal_before = db_->Stats().wal_bytes;
  ASSERT_GT(wal_before, 0u);
  Status ckpt = db_->Checkpoint();
  ASSERT_TRUE(ckpt.ok()) << ckpt.ToString();
  EXPECT_EQ(db_->Stats().checkpoints_taken, 1u);
  EXPECT_LT(db_->Stats().wal_bytes, wal_before);
  ASSERT_TRUE(storage::fsio::FileExists(dir.File("checkpoint.db")));

  // More traffic after the checkpoint, then a dirty restart: recovery is
  // checkpoint + tail.
  InsertAccount(9, "Berlin", 900, "POST-CKPT");
  driver_.reset();
  db_.reset();
  Boot(dir.path());
  const Database::RecoveryInfo& ri = db_->recovery_info();
  EXPECT_GT(ri.from_checkpoint_lsn, 0u);
  EXPECT_GT(ri.wal_records_replayed, 0u);
  auto r = driver_->Query("SELECT Owner FROM Account WHERE AcctID = @id",
                          {{"id", Value::Int32(9)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].str(), "POST-CKPT");
  auto all = driver_->Query("SELECT AcctID FROM Account");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->rows.size(), 4u);  // 3 checkpointed + 1 WAL-tail row
  auto range = driver_->Query("SELECT Owner FROM Account WHERE AcctBal > @x",
                              {{"x", Value::Int64(500)}});
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(range->rows.size(), 2u);  // BARNES (checkpoint) + POST-CKPT (tail)
}

TEST_F(DurableDatabaseTest, CrashDuringCheckpointPublishRecovers) {
  TempDir dir;
  Boot(dir.path());
  ProvisionAndCreateSchema();
  LoadAccounts();
  // The checkpoint dies between the tmp-file fsync and the rename: the
  // publish never happens, the WAL is untouched, and restart replays the
  // full log (plus ignores the stray tmp file).
  fault::FaultSpec spec;
  spec.trigger = fault::FaultSpec::Trigger::kOneShot;
  fault::FaultRegistry::Global().Arm("fsio/pre_rename", spec);
  EXPECT_FALSE(db_->Checkpoint().ok());
  driver_.reset();
  db_.reset();

  Boot(dir.path());
  EXPECT_EQ(db_->recovery_info().from_checkpoint_lsn, 0u);
  ExpectAccountsIntact();
}

TEST_F(DurableDatabaseTest, LostCreateIndexCannotLeakIntoALaterIndex) {
  TempDir dir;
  Boot(dir.path());
  ProvisionAndCreateSchema();
  LoadAccounts();
  // The CREATE INDEX executes fully — its build commits WAL records under a
  // fresh index id — but the journal commit marker is never written: the
  // crash window the journal's write-ahead protocol exists for.
  fault::FaultSpec spec;
  spec.trigger = fault::FaultSpec::Trigger::kOneShot;
  fault::FaultRegistry::Global().Arm("ddl/pre_commit_marker", spec);
  EXPECT_FALSE(
      driver_->ExecuteDdl("CREATE INDEX idx_branch ON Account (Branch)").ok());
  auto burned = db_->catalog().GetIndex("idx_branch");
  ASSERT_TRUE(burned.ok());  // executed live, just never acked
  const uint32_t burned_id = (*burned)->id;
  driver_.reset();
  db_.reset();

  Boot(dir.path());
  // The unacknowledged index is gone (losing an unacked DDL is legal)...
  EXPECT_FALSE(db_->catalog().GetIndex("idx_branch").ok());
  // ...but its id stays consumed: a later index must not collide with the
  // stale build records still sitting in the WAL.
  EXPECT_GT(db_->catalog().next_index_id(), burned_id);
  Status st = driver_->ExecuteDdl("CREATE INDEX idx_b2 ON Account (Branch)");
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto fresh = db_->catalog().GetIndex("idx_b2");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT((*fresh)->id, burned_id);

  // A second dirty restart replays the stale id-N records; they must land
  // nowhere, and the new index must keep answering correctly.
  driver_.reset();
  db_.reset();
  Boot(dir.path());
  ExpectAccountsIntact();
}

TEST_F(DurableDatabaseTest, CommittedDmlAgainstUnmarkedCreateTableRecovers) {
  TempDir dir;
  Boot(dir.path());
  // CREATE TABLE executes but its journal commit marker is lost; committed
  // DML then lands in the WAL referencing the new table id.
  fault::FaultSpec spec;
  spec.trigger = fault::FaultSpec::Trigger::kOneShot;
  fault::FaultRegistry::Global().Arm("ddl/pre_commit_marker", spec);
  EXPECT_FALSE(driver_
                   ->ExecuteDdl("CREATE TABLE Audit ("
                                "  Id INT NOT NULL,"
                                "  Note VARCHAR(40))")
                   .ok());
  auto ins = driver_->Query(
      "INSERT INTO Audit (Id, Note) VALUES (@i, @n)",
      {{"i", Value::Int32(1)}, {"n", Value::String("kept")}});
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  driver_.reset();
  db_.reset();

  // Recovery must neither fail Open() on the "unknown" table nor lose the
  // committed row: the write-ahead statement entry re-creates the table.
  Boot(dir.path());
  auto rows = driver_->Query("SELECT Note FROM Audit WHERE Id = @i",
                             {{"i", Value::Int32(1)}});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].str(), "kept");
}

TEST_F(DurableDatabaseTest, CrashBetweenPublishAndTruncateRecovers) {
  TempDir dir;
  Boot(dir.path());
  ProvisionAndCreateSchema();
  LoadAccounts();
  // The checkpoint file IS published but the WAL truncation never runs: the
  // log still holds pre-checkpoint records, which recovery must filter by
  // LSN rather than double-apply.
  fault::FaultSpec spec;
  spec.trigger = fault::FaultSpec::Trigger::kOneShot;
  fault::FaultRegistry::Global().Arm("ckpt/pre_truncate", spec);
  EXPECT_FALSE(db_->Checkpoint().ok());
  driver_.reset();
  db_.reset();

  Boot(dir.path());
  EXPECT_GT(db_->recovery_info().from_checkpoint_lsn, 0u);
  ExpectAccountsIntact();
}

TEST_F(DurableDatabaseTest, NoPlaintextAtRestAnywhereInDataDir) {
  TempDir dir;
  Boot(dir.path());
  ProvisionAndCreateSchema();
  LoadAccounts();
  ASSERT_TRUE(db_->Checkpoint().ok());  // put a checkpoint file on disk too
  InsertAccount(4, "Seattle", 25, "SMITH");  // and a fresh WAL tail
  ASSERT_TRUE(db_->Shutdown().ok());

  // The strong adversary reads every byte the server ever fsynced: WAL, DDL
  // journal, checkpoint, markers, AND the buffer pool's page-store spill
  // files. No encrypted column's plaintext may appear in any of them.
  std::vector<std::string> files = dir.Files();
  ASSERT_GE(files.size(), 3u);  // wal.log, ddl.log, checkpoint.db at least
  size_t page_store_files = 0;
  for (const std::string& file : files) {
    if (file.find("/pages/") != std::string::npos) ++page_store_files;
  }
  // The checkpoint flushed the pool, so evicted page images must be on disk —
  // if this is zero the scan is not actually covering the page store.
  EXPECT_GT(page_store_files, 0u);
  size_t scanned = 0;
  for (const std::string& file : files) {
    auto bytes = storage::fsio::ReadFileBytes(file);
    ASSERT_TRUE(bytes.ok()) << file << ": " << bytes.status().ToString();
    scanned += bytes->size();
    std::string_view haystack(reinterpret_cast<const char*>(bytes->data()),
                              bytes->size());
    for (const std::string& secret : Plaintexts()) {
      EXPECT_EQ(haystack.find(secret), std::string_view::npos)
          << "plaintext '" << secret << "' visible at rest in " << file;
    }
  }
  EXPECT_GT(scanned, 0u);
}

// ---------------------------------------------------------------------------
// Sharded durability: shard i persists under <root>/shard-<i> with its OWN
// wal.log / ddl.log / checkpoint.db, recovered independently of its peers.

class ShardedDurabilityTest : public DurabilityTest {
 protected:
  void SetUp() override {
    DurabilityTest::SetUp();
    Bytes seed;
    PutU64(&seed, 4242);
    crypto::HmacDrbg drbg(Slice(seed), Slice(std::string_view("aedb-serverd")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
  }

  /// Boots a sharded server stand-in over `dir` — fresh HGS + enclaves per
  /// call, exactly like a process restart.
  void Boot(const std::string& dir, uint32_t shards) {
    driver_.reset();
    sharded_.reset();
    Bytes seed;
    PutU64(&seed, 4242);
    hgs_ = std::make_unique<attestation::HostGuardianService>(Slice(seed));
    server::ShardedOptions opts;
    opts.shards = shards;
    opts.base.data_dir = dir;
    sharded_ = std::make_unique<server::ShardedDatabase>(std::move(opts),
                                                         hgs_.get(), &image_);
    for (uint32_t i = 0; i < shards; ++i) {
      hgs_->RegisterTcgLog(sharded_->shard(i)->platform()->tcg_log());
    }
    Status opened = sharded_->Open();
    ASSERT_TRUE(opened.ok()) << opened.ToString();
    client::DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    driver_ = std::make_unique<client::Driver>(sharded_.get(), &registry_,
                                               hgs_->signing_public(), dopts);
  }

  void InsertWarehouseRow(int w, int val) {
    auto r = driver_->Query("INSERT INTO Ledger (W_ID, VAL) VALUES (@w, @v)",
                            {{"w", Value::Int32(w)}, {"v", Value::Int32(val)}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  keys::KeyProviderRegistry registry_;
  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<server::ShardedDatabase> sharded_;
  std::unique_ptr<client::Driver> driver_;
};

// Every shard gets its own WAL on disk; a crashing shard replays ONLY its
// own log, and a whole-process dirty restart recovers all of them.
TEST_F(ShardedDurabilityTest, CrashingShardReplaysOnlyItsOwnLog) {
  TempDir dir;
  Boot(dir.path(), 2);
  ASSERT_TRUE(
      driver_->ExecuteDdl("CREATE TABLE Ledger (W_ID INT, VAL INT)").ok());
  InsertWarehouseRow(1, 10);  // shard 0: one row
  for (int i = 0; i < 6; ++i) InsertWarehouseRow(2, i);  // shard 1: six rows

  // Shared-nothing on disk: one wal.log (and ddl.log) per shard directory.
  for (int s = 0; s < 2; ++s) {
    std::string base = dir.path() + "/shard-" + std::to_string(s);
    EXPECT_TRUE(storage::fsio::FileExists(base + "/wal.log")) << base;
    EXPECT_TRUE(storage::fsio::FileExists(base + "/ddl.log")) << base;
  }

  // Crash+recover shard 1: its replay is sized by its OWN log — the six
  // shard-1 inserts, not shard 0's single row.
  auto rec1 = sharded_->RestartShard(1);
  ASSERT_TRUE(rec1.ok()) << rec1.status().ToString();
  auto rec0 = sharded_->RestartShard(0);
  ASSERT_TRUE(rec0.ok()) << rec0.status().ToString();
  EXPECT_GT(rec1->redone, rec0->redone)
      << "shard 1's recovery did not replay shard-1-sized history";

  // Whole-process dirty restart (no Shutdown): every shard replays its WAL.
  driver_.reset();
  sharded_.reset();
  Boot(dir.path(), 2);
  const server::RecoveryInfo& ri = sharded_->recovery_info();
  EXPECT_TRUE(ri.ran);
  EXPECT_FALSE(ri.clean_shutdown);
  EXPECT_GT(ri.wal_records_replayed, 0u);
  auto count = driver_->Query("SELECT COUNT(*) FROM Ledger");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->rows[0][0].i64(), 7);
  auto s1 = sharded_->shard(1)->Execute("SELECT COUNT(*) FROM Ledger", {});
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->rows[0][0].i64(), 6) << "shard 1 lost rows across restart";
}

// Checkpointing one shard truncates that shard's WAL only; the next restart
// recovers shard 0 from its checkpoint and shard 1 from its full log.
TEST_F(ShardedDurabilityTest, PerShardCheckpointsAreIndependent) {
  TempDir dir;
  Boot(dir.path(), 2);
  ASSERT_TRUE(
      driver_->ExecuteDdl("CREATE TABLE Ledger (W_ID INT, VAL INT)").ok());
  for (int i = 0; i < 4; ++i) {
    InsertWarehouseRow(1, i);
    InsertWarehouseRow(2, i);
  }
  Status ckpt = sharded_->shard(0)->Checkpoint();
  ASSERT_TRUE(ckpt.ok()) << ckpt.ToString();
  EXPECT_TRUE(
      storage::fsio::FileExists(dir.path() + "/shard-0/checkpoint.db"));
  EXPECT_FALSE(
      storage::fsio::FileExists(dir.path() + "/shard-1/checkpoint.db"))
      << "checkpointing shard 0 leaked a checkpoint onto shard 1";

  driver_.reset();
  sharded_.reset();
  Boot(dir.path(), 2);
  EXPECT_GT(sharded_->shard(0)->recovery_info().from_checkpoint_lsn, 0u);
  EXPECT_EQ(sharded_->shard(1)->recovery_info().from_checkpoint_lsn, 0u);
  EXPECT_GT(sharded_->shard(1)->recovery_info().wal_records_replayed,
            sharded_->shard(0)->recovery_info().wal_records_replayed)
      << "shard 0 should replay only its post-checkpoint tail";
  auto count = driver_->Query("SELECT COUNT(*) FROM Ledger");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].i64(), 8);
}

}  // namespace
}  // namespace aedb
