#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "storage/btree.h"
#include "storage/engine.h"
#include "storage/heap_table.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace aedb::storage {
namespace {

Bytes B(std::string_view s) { return Slice(s).ToBytes(); }

// Iterator keys come back through the buffer pool as Result<Bytes>; tests
// want a plain string and treat a key-read failure as fatal.
std::string KeyStr(const BTree::Iterator& it) {
  auto key = it.key();
  EXPECT_TRUE(key.ok()) << key.status().ToString();
  if (!key.ok()) return {};
  return std::string(key->begin(), key->end());
}

// --- Page ---

TEST(PageTest, InsertReadDelete) {
  Page page;
  auto s0 = page.Insert(B("hello"));
  auto s1 = page.Insert(B("world!"));
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(page.Read(*s0)->ToString(), "hello");
  EXPECT_EQ(page.Read(*s1)->ToString(), "world!");
  ASSERT_TRUE(page.Delete(*s0).ok());
  EXPECT_FALSE(page.Read(*s0).ok());
  EXPECT_TRUE(page.Read(*s1).ok());
}

TEST(PageTest, ResurrectRestoresBytes) {
  Page page;
  auto s = page.Insert(B("lazarus"));
  ASSERT_TRUE(page.Delete(*s).ok());
  EXPECT_FALSE(page.IsLive(*s));
  ASSERT_TRUE(page.Resurrect(*s).ok());
  EXPECT_EQ(page.Read(*s)->ToString(), "lazarus");
  // Double resurrect fails.
  EXPECT_FALSE(page.Resurrect(*s).ok());
}

TEST(PageTest, FillsUpAndRejects) {
  Page page;
  Bytes rec(100, 0xab);
  int inserted = 0;
  while (page.Insert(rec).ok()) ++inserted;
  EXPECT_GT(inserted, 70);  // ~8K / 104
  EXPECT_FALSE(page.HasSpaceFor(100));
  // Small records may still fit.
  EXPECT_TRUE(page.Insert(Bytes(1, 1)).ok() || !page.HasSpaceFor(1));
}

TEST(PageTest, UpdateInPlaceRules) {
  Page page;
  auto s = page.Insert(B("0123456789"));
  ASSERT_TRUE(page.UpdateInPlace(*s, B("abcde")).ok());
  EXPECT_EQ(page.Read(*s)->ToString(), "abcde");
  // Larger than current length: relocate.
  EXPECT_EQ(page.UpdateInPlace(*s, B("0123456789x")).code(),
            StatusCode::kOutOfRange);
}

TEST(PageTest, RejectsOversizedRecord) {
  Page page;
  Bytes huge(Page::kPageSize, 0);
  EXPECT_FALSE(page.Insert(huge).ok());
}

// --- HeapTable ---

TEST(HeapTableTest, InsertSpillsAcrossPages) {
  HeapTable heap;
  Bytes rec(1000, 0x11);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(heap.Insert(rec).ok());
  EXPECT_GT(heap.page_count(), 1u);
  EXPECT_EQ(heap.live_rows(), 20u);
}

TEST(HeapTableTest, ScanVisitsLiveRows) {
  HeapTable heap;
  std::vector<Rid> rids;
  for (int i = 0; i < 10; ++i) {
    rids.push_back(*heap.Insert(B("row" + std::to_string(i))));
  }
  ASSERT_TRUE(heap.Delete(rids[3]).ok());
  int count = 0;
  heap.Scan([&](const Rid&, Slice) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 9);
}

TEST(HeapTableTest, ScanEarlyStop) {
  HeapTable heap;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(heap.Insert(B("x")).ok());
  int count = 0;
  heap.Scan([&](const Rid&, Slice) { return ++count < 3; });
  EXPECT_EQ(count, 3);
}

TEST(HeapTableTest, UpdateMayMove) {
  HeapTable heap;
  Rid rid = *heap.Insert(B("short"));
  // Fill the page so a grown record cannot stay.
  while (heap.page_count() == 1) ASSERT_TRUE(heap.Insert(Bytes(500, 1)).ok());
  auto new_rid = heap.Update(rid, Bytes(2000, 2));
  ASSERT_TRUE(new_rid.ok());
  EXPECT_FALSE(*new_rid == rid);
  EXPECT_EQ(heap.Read(*new_rid)->size(), 2000u);
  EXPECT_FALSE(heap.Read(rid).ok());
}

// --- BTree ---

TEST(BTreeTest, InsertAndSeekEqual) {
  BinaryComparator cmp;
  BTree tree(&cmp, /*unique=*/false);
  for (int i = 0; i < 500; ++i) {
    Bytes key = B("key" + std::to_string(1000 + i));
    ASSERT_TRUE(tree.Insert(key, Rid{0, static_cast<uint16_t>(i)}).ok());
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GT(tree.height(), 1);
  auto rids = tree.SeekEqual(B("key1234"));
  ASSERT_TRUE(rids.ok());
  ASSERT_EQ(rids->size(), 1u);
  EXPECT_EQ((*rids)[0].slot, 234);
  EXPECT_TRUE(tree.SeekEqual(B("nope"))->empty());
}

TEST(BTreeTest, DuplicateKeys) {
  BinaryComparator cmp;
  BTree tree(&cmp, false);
  for (uint16_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(B("dup"), Rid{1, i}).ok());
  }
  auto rids = tree.SeekEqual(B("dup"));
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 100u);
}

TEST(BTreeTest, UniqueRejectsDuplicates) {
  BinaryComparator cmp;
  BTree tree(&cmp, true);
  EXPECT_TRUE(*tree.Insert(B("k"), Rid{0, 0}));
  auto second = tree.Insert(B("k"), Rid{0, 1});
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(*second);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, DeleteSpecificEntry) {
  BinaryComparator cmp;
  BTree tree(&cmp, false);
  for (uint16_t i = 0; i < 10; ++i) ASSERT_TRUE(tree.Insert(B("k"), Rid{0, i}).ok());
  EXPECT_TRUE(*tree.Delete(B("k"), Rid{0, 4}));
  EXPECT_FALSE(*tree.Delete(B("k"), Rid{0, 4}));
  auto rids = tree.SeekEqual(B("k"));
  EXPECT_EQ(rids->size(), 9u);
  for (const Rid& r : *rids) EXPECT_NE(r.slot, 4);
}

TEST(BTreeTest, RangeScanInOrder) {
  BinaryComparator cmp;
  BTree tree(&cmp, false);
  Xoshiro256 rng(99);
  std::vector<int> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<int>(rng.Uniform(0, 99999)));
  for (int v : values) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%05d", v);
    ASSERT_TRUE(tree.Insert(B(buf), Rid{0, 0}).ok());
  }
  std::string prev;
  size_t count = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    std::string cur = KeyStr(it);
    EXPECT_LE(prev, cur);
    prev = cur;
    ++count;
  }
  EXPECT_EQ(count, values.size());
}

TEST(BTreeTest, SeekAtLeast) {
  BinaryComparator cmp;
  BTree tree(&cmp, false);
  for (int i = 0; i < 100; i += 2) {
    char buf[8];
    snprintf(buf, sizeof(buf), "%03d", i);
    ASSERT_TRUE(tree.Insert(B(buf), Rid{0, 0}).ok());
  }
  auto it = tree.SeekAtLeast(B("051"));  // odd: next even is 052
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(KeyStr(*it), "052");
  auto exact = tree.SeekAtLeast(B("050"));
  EXPECT_EQ(KeyStr(*exact), "050");
  auto past = tree.SeekAtLeast(B("999"));
  EXPECT_FALSE(past->Valid());
}

TEST(BTreeTest, InsertDeleteChurn) {
  BinaryComparator cmp;
  BTree tree(&cmp, false);
  Xoshiro256 rng(7);
  std::multimap<std::string, uint16_t> model;
  for (int round = 0; round < 4000; ++round) {
    int v = static_cast<int>(rng.Uniform(0, 199));
    char buf[8];
    snprintf(buf, sizeof(buf), "%03d", v);
    uint16_t slot = static_cast<uint16_t>(rng.Uniform(0, 9999));
    if (rng.Uniform(0, 2) != 0 || model.empty()) {
      ASSERT_TRUE(tree.Insert(B(buf), Rid{0, slot}).ok());
      model.emplace(buf, slot);
    } else {
      // Delete a random model entry.
      auto it = model.begin();
      std::advance(it, rng.Uniform(0, static_cast<int64_t>(model.size()) - 1));
      ASSERT_TRUE(*tree.Delete(B(it->first), Rid{0, it->second}));
      model.erase(it);
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  // Compare full scans.
  auto it = tree.Begin();
  for (auto& [k, slot] : model) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(KeyStr(it), k);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

// A comparator that can be switched to fail, like an enclave missing its CEK.
class FailableComparator : public Comparator {
 public:
  Result<int> Compare(Slice a, Slice b) const override {
    if (fail) return Status::KeyNotInEnclave("CEK not installed");
    return a.compare(b);
  }
  const char* Name() const override { return "failable"; }
  mutable bool fail = false;
};

TEST(BTreeTest, ComparatorFailurePropagates) {
  FailableComparator cmp;
  BTree tree(&cmp, false);
  ASSERT_TRUE(tree.Insert(B("a"), Rid{0, 0}).ok());
  cmp.fail = true;
  EXPECT_TRUE(tree.Insert(B("b"), Rid{0, 1}).status().IsKeyNotInEnclave());
  EXPECT_TRUE(tree.SeekEqual(B("a")).status().IsKeyNotInEnclave());
  EXPECT_TRUE(tree.Delete(B("a"), Rid{0, 0}).status().IsKeyNotInEnclave());
}

TEST(BTreeTest, CountsComparisons) {
  BinaryComparator cmp;
  BTree tree(&cmp, false);
  for (uint16_t i = 0; i < 200; ++i) {
    char buf[8];
    snprintf(buf, sizeof(buf), "%03d", i);
    ASSERT_TRUE(tree.Insert(B(buf), Rid{0, i}).ok());
  }
  uint64_t before = tree.comparisons();
  ASSERT_TRUE(tree.SeekEqual(B("100")).ok());
  uint64_t seek_cost = tree.comparisons() - before;
  EXPECT_GT(seek_cost, 0u);
  EXPECT_LT(seek_cost, 30u);  // O(log n), not O(n)
}

// --- WAL ---

TEST(WalTest, AppendAssignsLsns) {
  Wal wal;
  LogRecord r;
  r.type = LogRecordType::kBegin;
  EXPECT_EQ(wal.Append(r).value(), 1u);
  EXPECT_EQ(wal.Append(r).value(), 2u);
  EXPECT_EQ(wal.record_count(), 2u);
}

TEST(WalTest, SerializationRoundTrip) {
  Wal wal;
  LogRecord r;
  r.txn_id = 42;
  r.type = LogRecordType::kHeapInsert;
  r.object_id = 7;
  r.rid = Rid{3, 9};
  r.payload1 = B("payload");
  ASSERT_TRUE(wal.Append(r).ok());
  Bytes raw = wal.RawBytes();
  WalLoadResult parsed = Wal::ParseImage(raw);
  EXPECT_FALSE(parsed.torn_tail);
  EXPECT_EQ(parsed.bytes_consumed, raw.size());
  ASSERT_EQ(parsed.records.size(), 1u);
  const LogRecord& back = parsed.records[0];
  EXPECT_EQ(back.txn_id, 42u);
  EXPECT_EQ(back.object_id, 7u);
  EXPECT_TRUE(back.rid == (Rid{3, 9}));
  EXPECT_EQ(back.payload1, B("payload"));
}

TEST(WalTest, ParseImageDropsTornTail) {
  Wal wal;
  LogRecord r;
  r.type = LogRecordType::kHeapInsert;
  r.payload1 = B("rowdata");
  ASSERT_TRUE(wal.Append(r).ok());
  ASSERT_TRUE(wal.Append(r).ok());
  Bytes raw = wal.RawBytes();

  // Cut mid-way through the second frame: parsing keeps record 1, drops the
  // torn tail, and reports it.
  WalLoadResult full = Wal::ParseImage(raw);
  ASSERT_EQ(full.frame_ends.size(), 2u);
  size_t mid = full.frame_ends[0] + (full.frame_ends[1] - full.frame_ends[0]) / 2;
  Bytes torn(raw.begin(), raw.begin() + mid);
  WalLoadResult parsed = Wal::ParseImage(torn);
  EXPECT_TRUE(parsed.torn_tail);
  EXPECT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.bytes_consumed, full.frame_ends[0]);

  // A flipped bit inside a frame body is caught by the checksum.
  Bytes corrupt = raw;
  corrupt[full.frame_ends[0] + 12] ^= 0x01;
  WalLoadResult after_flip = Wal::ParseImage(corrupt);
  EXPECT_TRUE(after_flip.torn_tail);
  EXPECT_EQ(after_flip.records.size(), 1u);
}

TEST(WalTest, TruncateBefore) {
  Wal wal;
  LogRecord r;
  r.type = LogRecordType::kBegin;
  for (int i = 0; i < 10; ++i) wal.Append(r);
  wal.TruncateBefore(6);
  EXPECT_EQ(wal.record_count(), 5u);
  EXPECT_EQ(wal.Snapshot().front().lsn, 6u);
}

// --- LockManager ---

TEST(LockManagerTest, ExclusiveAndReentrant) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, 100, std::chrono::milliseconds(10)).ok());
  ASSERT_TRUE(locks.Acquire(1, 100, std::chrono::milliseconds(10)).ok());
  EXPECT_FALSE(locks.Acquire(2, 100, std::chrono::milliseconds(10)).ok());
  EXPECT_TRUE(locks.IsLockedByOther(2, 100));
  EXPECT_FALSE(locks.IsLockedByOther(1, 100));
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.Acquire(2, 100, std::chrono::milliseconds(10)).ok());
}

TEST(LockManagerTest, ReleaseWakesWaiter) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, 5, std::chrono::milliseconds(10)).ok());
  std::thread waiter([&] {
    EXPECT_TRUE(locks.Acquire(2, 5, std::chrono::milliseconds(2000)).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  locks.ReleaseAll(1);
  waiter.join();
  EXPECT_EQ(locks.HeldCount(2), 1u);
}

// --- StorageEngine: transactions + recovery (§4.5) ---

class EngineTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kTable = 1;
  static constexpr uint32_t kIndex = 10;

  void Register(StorageEngine* engine, FailableComparator** cmp_out) {
    ASSERT_TRUE(engine->CreateTable(kTable).ok());
    auto cmp = std::make_unique<FailableComparator>();
    *cmp_out = cmp.get();
    ASSERT_TRUE(engine->CreateIndex(kIndex, kTable, std::move(cmp), false).ok());
  }
};

TEST_F(EngineTest, CommitPersistsThroughRecovery) {
  StorageEngine engine;
  FailableComparator* cmp;
  Register(&engine, &cmp);

  uint64_t txn = engine.Begin();
  Rid rid = *engine.HeapInsert(txn, kTable, B("row1"));
  ASSERT_TRUE(engine.IndexInsert(txn, kIndex, B("k1"), rid).ok());
  ASSERT_TRUE(engine.Commit(txn).ok());

  // Crash: new engine, same log.
  StorageEngine engine2;
  FailableComparator* cmp2;
  Register(&engine2, &cmp2);
  engine2.wal().Replace(engine.wal().Snapshot());
  auto result = engine2.Recover();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->deferred_txns.empty());
  EXPECT_EQ(engine2.table(kTable)->live_rows(), 1u);
  EXPECT_EQ(*engine2.table(kTable)->Read(rid), B("row1"));
  auto rids = engine2.index_tree(kIndex)->SeekEqual(B("k1"));
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 1u);
}

TEST_F(EngineTest, RuntimeAbortUndoesEverything) {
  StorageEngine engine;
  FailableComparator* cmp;
  Register(&engine, &cmp);

  uint64_t t1 = engine.Begin();
  Rid keep = *engine.HeapInsert(t1, kTable, B("keep"));
  ASSERT_TRUE(engine.IndexInsert(t1, kIndex, B("keep"), keep).ok());
  ASSERT_TRUE(engine.Commit(t1).ok());

  uint64_t t2 = engine.Begin();
  Rid gone = *engine.HeapInsert(t2, kTable, B("gone"));
  ASSERT_TRUE(engine.IndexInsert(t2, kIndex, B("gone"), gone).ok());
  ASSERT_TRUE(engine.HeapDelete(t2, kTable, keep).ok());
  ASSERT_TRUE(engine.IndexDelete(t2, kIndex, B("keep"), keep).ok());
  ASSERT_TRUE(engine.Abort(t2).ok());

  EXPECT_EQ(engine.table(kTable)->live_rows(), 1u);
  EXPECT_EQ(*engine.table(kTable)->Read(keep), B("keep"));
  EXPECT_EQ(engine.index_tree(kIndex)->SeekEqual(B("keep"))->size(), 1u);
  EXPECT_TRUE(engine.index_tree(kIndex)->SeekEqual(B("gone"))->empty());
}

TEST_F(EngineTest, LoserUndoneAtRecovery) {
  StorageEngine engine;
  FailableComparator* cmp;
  Register(&engine, &cmp);

  uint64_t t1 = engine.Begin();
  Rid r1 = *engine.HeapInsert(t1, kTable, B("committed"));
  ASSERT_TRUE(engine.IndexInsert(t1, kIndex, B("a"), r1).ok());
  ASSERT_TRUE(engine.Commit(t1).ok());

  uint64_t t2 = engine.Begin();
  Rid r2 = *engine.HeapInsert(t2, kTable, B("in-flight"));
  ASSERT_TRUE(engine.IndexInsert(t2, kIndex, B("b"), r2).ok());
  // Crash with t2 in flight.

  StorageEngine engine2;
  FailableComparator* cmp2;
  Register(&engine2, &cmp2);
  engine2.wal().Replace(engine.wal().Snapshot());
  auto result = engine2.Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->deferred_txns.empty());
  EXPECT_EQ(engine2.table(kTable)->live_rows(), 1u);
  EXPECT_EQ(engine2.index_tree(kIndex)->SeekEqual(B("b"))->size(), 0u);
  EXPECT_EQ(engine2.index_tree(kIndex)->SeekEqual(B("a"))->size(), 1u);
}

TEST_F(EngineTest, MissingEnclaveKeyDefersTransaction) {
  StorageEngine engine;
  FailableComparator* cmp;
  Register(&engine, &cmp);

  uint64_t t1 = engine.Begin();
  Rid r1 = *engine.HeapInsert(t1, kTable, B("committed"));
  ASSERT_TRUE(engine.IndexInsert(t1, kIndex, B("a"), r1).ok());
  ASSERT_TRUE(engine.Commit(t1).ok());

  uint64_t t2 = engine.Begin();
  ASSERT_TRUE(engine.LockRow(t2, kTable, r1).ok());
  Rid r2 = *engine.HeapInsert(t2, kTable, B("loser"));
  ASSERT_TRUE(engine.IndexInsert(t2, kIndex, B("b"), r2).ok());

  // Crash; on restart the enclave has no keys: comparator fails.
  StorageEngine engine2;
  FailableComparator* cmp2;
  Register(&engine2, &cmp2);
  engine2.wal().Replace(engine.wal().Snapshot());
  cmp2->fail = true;
  auto result = engine2.Recover();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->deferred_txns.size(), 1u);
  EXPECT_EQ(result->rebuild_pending_indexes, std::vector<uint32_t>{kIndex});
  EXPECT_TRUE(engine2.HasDeferredTxns());

  // Heap is already clean (committed state), but the loser's rows stay
  // locked and the index is unusable.
  EXPECT_EQ(engine2.table(kTable)->live_rows(), 1u);
  EXPECT_FALSE(engine2.CheckIndexUsable(kIndex).ok());
  uint64_t reader = engine2.Begin();
  EXPECT_FALSE(engine2.LockRow(reader, kTable, r2).ok());  // blocked

  // Log truncation is pinned by the deferred transaction (§4.5).
  EXPECT_FALSE(engine2.CanTruncateLog().ok());

  // Client connects, keys arrive: deferred work resolves.
  cmp2->fail = false;
  ASSERT_TRUE(engine2.ResolveDeferred().ok());
  EXPECT_FALSE(engine2.HasDeferredTxns());
  EXPECT_TRUE(engine2.CheckIndexUsable(kIndex).ok());
  EXPECT_EQ(engine2.index_tree(kIndex)->SeekEqual(B("a"))->size(), 1u);
  EXPECT_EQ(engine2.index_tree(kIndex)->SeekEqual(B("b"))->size(), 0u);
  uint64_t reader2 = engine2.Begin();
  EXPECT_TRUE(engine2.LockRow(reader2, kTable, r2).ok());
}

TEST_F(EngineTest, ConstantTimeRecoveryReleasesLocks) {
  StorageEngine crashed;
  FailableComparator* cmp;
  Register(&crashed, &cmp);
  uint64_t t = crashed.Begin();
  Rid r = *crashed.HeapInsert(t, kTable, B("loser"));
  ASSERT_TRUE(crashed.IndexInsert(t, kIndex, B("x"), r).ok());

  EngineOptions opts;
  opts.constant_time_recovery = true;
  StorageEngine engine(opts);
  FailableComparator* cmp2;
  Register(&engine, &cmp2);
  engine.wal().Replace(crashed.wal().Snapshot());
  cmp2->fail = true;
  auto result = engine.Recover();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->deferred_txns.size(), 1u);
  // CTR: no locks held; rows fully available.
  uint64_t reader = engine.Begin();
  EXPECT_TRUE(engine.LockRow(reader, kTable, r).ok());
  // But the deferred txn still pins the log until keys arrive.
  EXPECT_FALSE(engine.CanTruncateLog().ok());
}

TEST_F(EngineTest, IndexInvalidationForcesResolution) {
  StorageEngine crashed;
  FailableComparator* cmp;
  Register(&crashed, &cmp);
  uint64_t t = crashed.Begin();
  Rid r = *crashed.HeapInsert(t, kTable, B("loser"));
  ASSERT_TRUE(crashed.IndexInsert(t, kIndex, B("x"), r).ok());

  StorageEngine engine;
  FailableComparator* cmp2;
  Register(&engine, &cmp2);
  engine.wal().Replace(crashed.wal().Snapshot());
  cmp2->fail = true;
  ASSERT_TRUE(engine.Recover().ok());
  ASSERT_TRUE(engine.HasDeferredTxns());

  // Policy fires (timeout / log space): invalidate the index.
  ASSERT_TRUE(engine.InvalidateIndex(kIndex).ok());
  EXPECT_FALSE(engine.HasDeferredTxns());
  EXPECT_TRUE(engine.IndexInvalid(kIndex));
  EXPECT_FALSE(engine.CheckIndexUsable(kIndex).ok());
  EXPECT_TRUE(engine.CanTruncateLog().ok());
  // Writes to the invalid index are refused.
  uint64_t t2 = engine.Begin();
  Rid r2 = *engine.HeapInsert(t2, kTable, B("new"));
  EXPECT_FALSE(engine.IndexInsert(t2, kIndex, B("y"), r2).ok());
}

TEST_F(EngineTest, RedoIsDeterministic) {
  StorageEngine engine;
  FailableComparator* cmp;
  Register(&engine, &cmp);
  Xoshiro256 rng(3);
  std::vector<Rid> live;
  uint64_t txn = engine.Begin();
  for (int i = 0; i < 500; ++i) {
    if (rng.Uniform(0, 3) != 0 || live.empty()) {
      Bytes rec(static_cast<size_t>(rng.Uniform(1, 300)), 0x5a);
      live.push_back(*engine.HeapInsert(txn, kTable, rec));
    } else {
      size_t pick = static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(live.size()) - 1));
      ASSERT_TRUE(engine.HeapDelete(txn, kTable, live[pick]).ok());
      live.erase(live.begin() + pick);
    }
  }
  ASSERT_TRUE(engine.Commit(txn).ok());

  StorageEngine engine2;
  FailableComparator* cmp2;
  Register(&engine2, &cmp2);
  engine2.wal().Replace(engine.wal().Snapshot());
  ASSERT_TRUE(engine2.Recover().ok());
  EXPECT_EQ(engine2.table(kTable)->live_rows(), live.size());
  for (const Rid& rid : live) {
    EXPECT_TRUE(engine2.table(kTable)->Read(rid).ok());
  }
}

TEST_F(EngineTest, UniqueIndexViolationSurfaces) {
  StorageEngine engine;
  ASSERT_TRUE(engine.CreateTable(kTable).ok());
  ASSERT_TRUE(engine
                  .CreateIndex(kIndex, kTable,
                               std::make_unique<BinaryComparator>(), true)
                  .ok());
  uint64_t txn = engine.Begin();
  Rid r1 = *engine.HeapInsert(txn, kTable, B("a"));
  Rid r2 = *engine.HeapInsert(txn, kTable, B("b"));
  ASSERT_TRUE(engine.IndexInsert(txn, kIndex, B("k"), r1).ok());
  EXPECT_EQ(engine.IndexInsert(txn, kIndex, B("k"), r2).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace aedb::storage
