#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "tpcc/tpcc.h"

namespace aedb::tpcc {
namespace {

using client::Driver;
using client::DriverOptions;
using types::Value;

class TpccTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    vault_ = std::make_unique<keys::InMemoryKeyVault>();
    ASSERT_TRUE(vault_->CreateKey("kv/tpcc-enclave", 1024).ok());
    ASSERT_TRUE(vault_->CreateKey("kv/tpcc-cold", 1024).ok());
    ASSERT_TRUE(registry_.Register(vault_.get()).ok());
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("tpcc-author")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
    hgs_ = std::make_unique<attestation::HostGuardianService>();
    server::ServerOptions opts;
    db_ = std::make_unique<server::Database>(opts, hgs_.get(), &image_);
    hgs_->RegisterTcgLog(db_->platform()->tcg_log());
  }

  std::unique_ptr<Driver> MakeDriver() {
    DriverOptions opts;
    opts.enclave_policy.trusted_author_id = image_.AuthorId();
    return std::make_unique<Driver>(db_.get(), &registry_,
                                    hgs_->signing_public(), opts);
  }

  void ProvisionKeys(Driver* driver, Encryption enc) {
    if (enc == Encryption::kPlaintext) return;
    bool enclave = enc == Encryption::kRandomized;
    ASSERT_TRUE(driver
                    ->ProvisionCmk("TpccCMK", vault_->name(),
                                   enclave ? "kv/tpcc-enclave" : "kv/tpcc-cold",
                                   enclave)
                    .ok());
    ASSERT_TRUE(driver->ProvisionCek("TpccCEK", "TpccCMK").ok());
  }

  std::unique_ptr<keys::InMemoryKeyVault> vault_;
  keys::KeyProviderRegistry registry_;
  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<server::Database> db_;
};

class TpccTest : public TpccTestBase,
                 public ::testing::WithParamInterface<Encryption> {};

TEST(TpccHelpers, LastNameSyllables) {
  EXPECT_EQ(LastName(0), "BARBARBAR");
  EXPECT_EQ(LastName(371), "PRICALLYOUGHT");
  EXPECT_EQ(LastName(999), "EINGEINGEING");
}

TEST_P(TpccTest, LoadAndRunMix) {
  TpccConfig config;
  config.warehouses = 1;
  config.customers_per_district = 12;
  config.districts_per_warehouse = 3;
  config.items = 40;
  config.initial_orders_per_district = 6;
  config.encryption = GetParam();

  auto driver = MakeDriver();
  ProvisionKeys(driver.get(), config.encryption);
  TpccLoader loader(driver.get(), config);
  Status schema = loader.CreateSchema();
  ASSERT_TRUE(schema.ok()) << schema.ToString();
  Status load = loader.Load();
  ASSERT_TRUE(load.ok()) << load.ToString();

  // Row counts make sense.
  auto customers = driver->Query("SELECT COUNT(*) FROM Customer");
  ASSERT_TRUE(customers.ok());
  EXPECT_EQ(customers->rows[0][0].i64(), 12 * 3);

  // Run each transaction type directly at least once, then a mixed batch.
  TpccTerminal terminal(driver.get(), config, 7);
  EXPECT_TRUE(terminal.NewOrder().ok());
  EXPECT_TRUE(terminal.Payment().ok());
  EXPECT_TRUE(terminal.OrderStatus().ok());
  EXPECT_TRUE(terminal.Delivery().ok());
  EXPECT_TRUE(terminal.StockLevel().ok());
  for (int i = 0; i < 60; ++i) {
    Status st = terminal.RunOne();
    ASSERT_TRUE(st.ok()) << "txn " << i << ": " << st.ToString();
  }
  EXPECT_GT(terminal.committed(), 50u);

  // Sanity: the order counter moved and payments accumulated.
  auto ytd = driver->Query("SELECT SUM(D_YTD) FROM District");
  ASSERT_TRUE(ytd.ok());
  EXPECT_GT(ytd->rows[0][0].dbl(), 3 * 30000.0);

  if (config.encryption == Encryption::kRandomized) {
    EXPECT_GT(db_->enclave()->stats().evals.load(), 0u);
    EXPECT_GT(db_->enclave()->stats().comparisons.load(), 0u);
  } else {
    // DET and plaintext configurations never touch the enclave.
    EXPECT_EQ(db_->enclave()->stats().evals.load(), 0u);
  }

  // The PII never appears in plaintext on pages when encryption is on.
  if (config.encryption != Encryption::kPlaintext) {
    bool leaked = false;
    db_->engine().ForEachPageRaw([&](uint32_t, Slice page) {
      std::string_view h(reinterpret_cast<const char*>(page.data()), page.size());
      if (h.find("BARBARBAR") != std::string_view::npos) leaked = true;
    });
    EXPECT_FALSE(leaked);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, TpccTest,
                         ::testing::Values(Encryption::kPlaintext,
                                           Encryption::kDeterministic,
                                           Encryption::kRandomized),
                         [](const auto& info) {
                           return std::string(EncryptionName(info.param));
                         });

TEST_F(TpccTestBase, BenchcraftMultiThreaded) {
  TpccConfig config;
  config.warehouses = 1;
  config.customers_per_district = 12;
  config.districts_per_warehouse = 4;
  config.items = 40;
  config.initial_orders_per_district = 4;
  config.encryption = Encryption::kPlaintext;
  auto loader_driver = MakeDriver();
  TpccLoader loader(loader_driver.get(), config);
  ASSERT_TRUE(loader.CreateSchema().ok());
  ASSERT_TRUE(loader.Load().ok());

  // Run-to-count, not run-for-time: asserting ">N committed in one second"
  // was flaky on slow or loaded machines. The deadline is only a safety net
  // against a wedged run.
  auto result = RunBenchcraftCount([this] { return MakeDriver(); }, config,
                                   /*threads=*/4, /*target_committed=*/40,
                                   /*deadline_seconds=*/60.0);
  EXPECT_GE(result.committed, 40u) << "first error: " << result.first_error;
  EXPECT_GT(result.txn_per_second, 0.0);
  EXPECT_TRUE(result.first_error.empty()) << result.first_error;
}

}  // namespace
}  // namespace aedb::tpcc
