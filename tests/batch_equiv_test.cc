// Differential suite for batched expression services: every query shape runs
// at executor batch sizes {1, 3, 256} against identically loaded deployments
// and must produce identical result sets and identical enclave `comparisons`
// counters (the authorized operational leak is batch-size invariant), while
// larger batch sizes must charge strictly fewer enclave transitions. Batch
// size 1 is literally the row-at-a-time system (the ServerInvoker delegates
// to the scalar entry points), so these tests pin the batched pipeline to the
// PR 1/PR 2 semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "fault/fault.h"
#include "server/database.h"

namespace aedb {
namespace {

using client::Driver;
using client::DriverOptions;
using server::Database;
using server::DatabaseStats;
using server::ServerOptions;
using types::TypeId;
using types::Value;

constexpr const char* kVaultPath = "https://vault.example/keys/cmk1";

/// One full deployment (vault, HGS, enclave, server, driver) pinned to a
/// specific executor morsel size.
struct Deployment {
  std::unique_ptr<keys::InMemoryKeyVault> vault;
  keys::KeyProviderRegistry registry;
  crypto::RsaPrivateKey author_key;
  enclave::EnclaveImage image;
  std::unique_ptr<attestation::HostGuardianService> hgs;
  std::unique_ptr<Database> db;
  std::unique_ptr<Driver> driver;

  explicit Deployment(size_t batch_size) {
    vault = std::make_unique<keys::InMemoryKeyVault>();
    EXPECT_TRUE(vault->CreateKey(kVaultPath, 1024).ok());
    EXPECT_TRUE(registry.Register(vault.get()).ok());
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("batch-equiv")));
    author_key = crypto::GenerateRsaKey(1024, &drbg);
    image = enclave::EnclaveImage::MakeEsImage(1, author_key);
    hgs = std::make_unique<attestation::HostGuardianService>();
    ServerOptions opts;
    opts.eval_batch_size = batch_size;
    db = std::make_unique<Database>(opts, hgs.get(), &image);
    hgs->RegisterTcgLog(db->platform()->tcg_log());
    DriverOptions driver_opts;
    driver_opts.enclave_policy.trusted_author_id = image.AuthorId();
    driver = std::make_unique<Driver>(db.get(), &registry,
                                      hgs->signing_public(), driver_opts);
  }

  void CreateSchemaAndLoad(int rows) {
    ASSERT_TRUE(driver
                    ->ProvisionCmk("MyCMK", vault->name(), kVaultPath,
                                   /*enclave_enabled=*/true)
                    .ok());
    ASSERT_TRUE(driver->ProvisionCek("MyCEK", "MyCMK").ok());
    Status st = driver->ExecuteDdl(
        "CREATE TABLE Account ("
        "  AcctID INT NOT NULL,"
        "  Branch VARCHAR(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = MyCEK,"
        "    ENCRYPTION_TYPE = Deterministic,"
        "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'),"
        "  AcctBal BIGINT ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = MyCEK,"
        "    ENCRYPTION_TYPE = Randomized,"
        "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'),"
        "  Owner VARCHAR(40) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = MyCEK,"
        "    ENCRYPTION_TYPE = Randomized,"
        "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))");
    ASSERT_TRUE(st.ok()) << st.ToString();
    static constexpr const char* kBranches[] = {"Seattle", "Zurich", "Berlin"};
    static constexpr const char* kOwners[] = {"SMITH", "SMYTHE", "BARNES",
                                              "SMITHSON", "ADAMS"};
    for (int i = 0; i < rows; ++i) {
      auto r = driver->Query(
          "INSERT INTO Account (AcctID, Branch, AcctBal, Owner) "
          "VALUES (@id, @branch, @bal, @owner)",
          {{"id", Value::Int32(i)},
           {"branch", Value::String(kBranches[i % 3])},
           {"bal", Value::Int64((i * 37) % 500)},
           {"owner", Value::String(std::string(kOwners[i % 5]) +
                                   std::to_string(i))}});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }
};

std::string ValueRepr(const Value& v) {
  if (v.is_null()) return "<null>";
  switch (v.type()) {
    case TypeId::kInt32: return std::to_string(v.i32());
    case TypeId::kInt64: return std::to_string(v.i64());
    case TypeId::kBool: return v.bool_v() ? "true" : "false";
    case TypeId::kString: return v.str();
    default: {
      std::ostringstream os;
      os << "b" << v.Encode().size();
      return os.str();
    }
  }
}

/// Canonical (order-insensitive) representation of a result set.
std::vector<std::string> Canonical(const sql::ResultSet& rs) {
  std::vector<std::string> rows;
  rows.reserve(rs.rows.size());
  for (const auto& row : rs.rows) {
    std::string s;
    for (const auto& v : row) {
      s += ValueRepr(v);
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// The query shapes from the e2e/sql suites, parameterized for the loaded
/// data: DET equality, enclave equality, range, BETWEEN, LIKE, compound,
/// aggregate, GROUP BY.
const std::vector<std::pair<std::string,
                            std::vector<std::pair<std::string, Value>>>>&
ReadWorkload() {
  static const auto* workload = new std::vector<
      std::pair<std::string, std::vector<std::pair<std::string, Value>>>>{
      {"SELECT AcctID, AcctBal FROM Account WHERE Branch = @b",
       {{"b", Value::String("Seattle")}}},
      {"SELECT AcctID FROM Account WHERE AcctBal = @v",
       {{"v", Value::Int64(37)}}},
      {"SELECT AcctID, Owner FROM Account WHERE AcctBal BETWEEN @lo AND @hi",
       {{"lo", Value::Int64(100)}, {"hi", Value::Int64(300)}}},
      {"SELECT AcctID FROM Account WHERE AcctBal > @min",
       {{"min", Value::Int64(250)}}},
      {"SELECT AcctID FROM Account WHERE Owner LIKE @p",
       {{"p", Value::String("SMI%")}}},
      {"SELECT AcctID FROM Account WHERE AcctBal >= @lo AND Owner LIKE @p",
       {{"lo", Value::Int64(50)}, {"p", Value::String("%1")}}},
      {"SELECT COUNT(*) FROM Account WHERE AcctBal < @x",
       {{"x", Value::Int64(200)}}},
      {"SELECT Branch, COUNT(*) FROM Account GROUP BY Branch", {}},
  };
  return *workload;
}

constexpr std::array<size_t, 3> kBatchSizes = {1, 3, 256};
constexpr int kRows = 30;

TEST(BatchEquivTest, ReadWorkloadIdenticalAcrossBatchSizes) {
  std::vector<std::unique_ptr<Deployment>> deps;
  std::vector<std::vector<std::vector<std::string>>> results(
      kBatchSizes.size());
  std::vector<uint64_t> comparisons_delta(kBatchSizes.size());
  std::vector<uint64_t> transitions_delta(kBatchSizes.size());
  for (size_t d = 0; d < kBatchSizes.size(); ++d) {
    deps.push_back(std::make_unique<Deployment>(kBatchSizes[d]));
    deps[d]->CreateSchemaAndLoad(kRows);
    if (::testing::Test::HasFatalFailure()) return;
    DatabaseStats before = deps[d]->db->Stats();
    for (const auto& [sql, params] : ReadWorkload()) {
      auto r = deps[d]->driver->Query(sql, params);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      results[d].push_back(Canonical(*r));
    }
    DatabaseStats after = deps[d]->db->Stats();
    comparisons_delta[d] =
        after.enclave_comparisons - before.enclave_comparisons;
    transitions_delta[d] = after.enclave_transitions - before.enclave_transitions;
  }
  for (size_t d = 1; d < kBatchSizes.size(); ++d) {
    ASSERT_EQ(results[d].size(), results[0].size());
    for (size_t q = 0; q < results[0].size(); ++q) {
      EXPECT_EQ(results[d][q], results[0][q])
          << "batch size " << kBatchSizes[d] << " diverged on query " << q
          << " (" << ReadWorkload()[q].first << ")";
    }
    // The operational leak (cell comparisons the client authorized) must not
    // depend on the morsel size.
    EXPECT_EQ(comparisons_delta[d], comparisons_delta[0])
        << "comparison leak changed at batch size " << kBatchSizes[d];
  }
  // Amortization: strictly fewer call-gate transitions at every step up.
  EXPECT_LT(transitions_delta[1], transitions_delta[0]);
  EXPECT_LT(transitions_delta[2], transitions_delta[1]);
  // The batched deployments actually used the batch entry points, and the
  // gauge surfaces through Database::Stats.
  DatabaseStats s256 = deps[2]->db->Stats();
  EXPECT_GT(s256.enclave_batch_evals, 0u);
  EXPECT_GT(s256.enclave_batched_values, s256.enclave_batch_evals);
  EXPECT_GT(s256.values_per_transition, 0.0);
}

TEST(BatchEquivTest, RangeIndexSeeksIdenticalAcrossBatchSizes) {
  std::vector<std::vector<std::vector<std::string>>> results(
      kBatchSizes.size());
  std::vector<uint64_t> comparisons_delta(kBatchSizes.size());
  const std::vector<std::pair<std::string,
                              std::vector<std::pair<std::string, Value>>>>
      queries = {
          {"SELECT AcctID FROM Account WHERE AcctBal >= @lo",
           {{"lo", Value::Int64(200)}}},
          {"SELECT AcctID FROM Account WHERE AcctBal BETWEEN @lo AND @hi",
           {{"lo", Value::Int64(50)}, {"hi", Value::Int64(400)}}},
          {"SELECT AcctID FROM Account WHERE AcctBal = @v",
           {{"v", Value::Int64(111)}}},
      };
  for (size_t d = 0; d < kBatchSizes.size(); ++d) {
    Deployment dep(kBatchSizes[d]);
    dep.CreateSchemaAndLoad(kRows);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(
        dep.driver->ExecuteDdl("CREATE INDEX idx_bal ON Account (AcctBal)")
            .ok());
    DatabaseStats before = dep.db->Stats();
    for (const auto& [sql, params] : queries) {
      auto r = dep.driver->Query(sql, params);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      results[d].push_back(Canonical(*r));
    }
    DatabaseStats after = dep.db->Stats();
    comparisons_delta[d] =
        after.enclave_comparisons - before.enclave_comparisons;
  }
  for (size_t d = 1; d < kBatchSizes.size(); ++d) {
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(results[d][q], results[0][q])
          << "batch size " << kBatchSizes[d] << " diverged on indexed query "
          << q;
    }
    // Index navigation charges one comparison per probed cell whether the
    // node is probed cell-at-a-time or via CompareCellsBatch.
    EXPECT_EQ(comparisons_delta[d], comparisons_delta[0]);
  }
}

TEST(BatchEquivTest, DmlIdenticalAcrossBatchSizes) {
  std::vector<std::vector<std::vector<std::string>>> results(
      kBatchSizes.size());
  std::vector<uint64_t> transitions_delta(kBatchSizes.size());
  for (size_t d = 0; d < kBatchSizes.size(); ++d) {
    Deployment dep(kBatchSizes[d]);
    dep.CreateSchemaAndLoad(kRows);
    if (::testing::Test::HasFatalFailure()) return;
    DatabaseStats before = dep.db->Stats();
    auto upd = dep.driver->Query(
        "UPDATE Account SET AcctBal = @new WHERE AcctBal > @min",
        {{"new", Value::Int64(999)}, {"min", Value::Int64(400)}});
    ASSERT_TRUE(upd.ok()) << upd.status().ToString();
    results[d].push_back(Canonical(*upd));
    auto del = dep.driver->Query("DELETE FROM Account WHERE Owner LIKE @p",
                                 {{"p", Value::String("ADAMS%")}});
    ASSERT_TRUE(del.ok()) << del.status().ToString();
    results[d].push_back(Canonical(*del));
    auto rest = dep.driver->Query(
        "SELECT AcctID, Branch, AcctBal, Owner FROM Account");
    ASSERT_TRUE(rest.ok());
    results[d].push_back(Canonical(*rest));
    DatabaseStats after = dep.db->Stats();
    transitions_delta[d] = after.enclave_transitions - before.enclave_transitions;
  }
  for (size_t d = 1; d < kBatchSizes.size(); ++d) {
    EXPECT_EQ(results[d][0], results[0][0]) << "UPDATE count diverged";
    EXPECT_EQ(results[d][1], results[0][1]) << "DELETE count diverged";
    EXPECT_EQ(results[d][2], results[0][2]) << "final table state diverged";
  }
  EXPECT_LT(transitions_delta[1], transitions_delta[0]);
  EXPECT_LT(transitions_delta[2], transitions_delta[1]);
}

TEST(BatchEquivTest, MidBatchFaultLeavesNoPartialMorsel) {
  Deployment dep(/*batch_size=*/256);
  dep.CreateSchemaAndLoad(kRows);
  if (::testing::Test::HasFatalFailure()) return;
  auto before = dep.driver->Query(
      "SELECT AcctID, Branch, AcctBal, Owner FROM Account");
  ASSERT_TRUE(before.ok());

  {
    // Fire on the 5th row of the first morsel: rows 0-4 were already
    // evaluated inside the enclave when the batch dies.
    fault::ScopedFault fault(
        "enclave/batch_partial_failure",
        fault::FaultSpec::EveryNth(5, Status::Internal("injected mid-batch")));
    auto upd = dep.driver->Query(
        "UPDATE Account SET AcctBal = @new WHERE AcctBal >= @min",
        {{"new", Value::Int64(777)}, {"min", Value::Int64(0)}});
    EXPECT_FALSE(upd.ok());
  }

  // Clean statement error: nothing from the poisoned morsel was applied.
  auto after = dep.driver->Query(
      "SELECT AcctID, Branch, AcctBal, Owner FROM Account");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Canonical(*after), Canonical(*before));
  auto touched = dep.driver->Query(
      "SELECT COUNT(*) FROM Account WHERE AcctBal = @v",
      {{"v", Value::Int64(777)}});
  ASSERT_TRUE(touched.ok());
  EXPECT_EQ(touched->rows[0][0].i64(), 0);

  // With the fault disarmed the same statement succeeds.
  auto retry = dep.driver->Query(
      "UPDATE Account SET AcctBal = @new WHERE AcctBal >= @min",
      {{"new", Value::Int64(777)}, {"min", Value::Int64(0)}});
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->rows[0][0].i64(), kRows);
}

TEST(BatchEquivTest, JoinResidualIdenticalAcrossBatchSizes) {
  std::vector<std::vector<std::string>> results(kBatchSizes.size());
  for (size_t d = 0; d < kBatchSizes.size(); ++d) {
    Deployment dep(kBatchSizes[d]);
    dep.CreateSchemaAndLoad(kRows);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(dep.driver
                    ->ExecuteDdl(
                        "CREATE TABLE BranchInfo (BName VARCHAR(20) ENCRYPTED "
                        "WITH (COLUMN_ENCRYPTION_KEY = MyCEK, ENCRYPTION_TYPE "
                        "= Deterministic, ALGORITHM = "
                        "'AEAD_AES_256_CBC_HMAC_SHA_256'), Region VARCHAR(10))")
                    .ok());
    for (auto [name, region] :
         {std::pair<const char*, const char*>{"Seattle", "US"},
          {"Zurich", "EU"},
          {"Berlin", "EU"}}) {
      auto r = dep.driver->Query(
          "INSERT INTO BranchInfo (BName, Region) VALUES (@n, @r)",
          {{"n", Value::String(name)}, {"r", Value::String(region)}});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    auto joined = dep.driver->Query(
        "SELECT AcctID, Region FROM Account JOIN BranchInfo ON "
        "Account.Branch = BranchInfo.BName WHERE Region = @reg",
        {{"reg", Value::String("EU")}});
    ASSERT_TRUE(joined.ok()) << joined.status().ToString();
    results[d] = Canonical(*joined);
  }
  for (size_t d = 1; d < kBatchSizes.size(); ++d) {
    EXPECT_EQ(results[d], results[0])
        << "join diverged at batch size " << kBatchSizes[d];
  }
}

}  // namespace
}  // namespace aedb
