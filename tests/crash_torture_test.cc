#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "net/socket_transport.h"
#include "process_supervisor.h"
#include "storage/fsio.h"
#include "tpcc/tpcc.h"

// The kill -9 process-crash torture harness (ISSUE 7 tentpole part 3).
//
// A real aedb_serverd child serves encrypted TPC-C over TCP from a durable
// --data-dir. The harness SIGKILLs it at seeded random points — plus forced
// crashes at wal/append, wal/sync (the commit durability point),
// fsio/pre_rename (mid-checkpoint publish), ckpt/pre_truncate (checkpoint
// published, WAL not yet truncated) and recovery/replay (mid-recovery) — then
// restarts it over the same files and verifies from the client side that
// exactly the acknowledged-commit prefix survived, with zero wrong results,
// while the one long-lived driver re-attests transparently.
//
// Durable ground truth is a CommitLog table with a randomized-encrypted
// payload: every acknowledged INSERT must be present byte-exact after any
// crash, every surviving row must have been acknowledged or in flight, and
// no row may ever decrypt to the wrong payload.
//
// Gated off tier-1 (ctest label `crash`, scripts/verify.sh --crash) because
// it forks ~25 server processes: set AEDB_RUN_CRASH_TORTURE=1 to run.

#ifndef AEDB_SERVERD_PATH
#define AEDB_SERVERD_PATH "aedb_serverd"
#endif

namespace aedb {
namespace {

using client::Driver;
using client::DriverOptions;
using types::Value;

constexpr uint64_t kKeySeed = 4242;

std::string TagFor(uint64_t seq) {
  return "tag-" + std::to_string(seq) + "-CONFIDENTIAL-PAYLOAD";
}

class CrashTortureTest : public ::testing::Test {
 protected:
  static constexpr const char* kVaultPath = "https://vault.example/keys/tpcc";

  void SetUp() override {
    if (const char* run = std::getenv("AEDB_RUN_CRASH_TORTURE");
        run == nullptr || std::string(run) != "1") {
      GTEST_SKIP() << "set AEDB_RUN_CRASH_TORTURE=1 to run the process-crash "
                      "torture harness (forks ~25 servers)";
    }
    char templ[] = "/tmp/aedb_crash_torture_XXXXXX";
    char* made = mkdtemp(templ);
    ASSERT_NE(made, nullptr);
    data_dir_ = made;

    vault_ = std::make_unique<keys::InMemoryKeyVault>();
    ASSERT_TRUE(vault_->CreateKey(kVaultPath, 1024).ok());
    ASSERT_TRUE(registry_.Register(vault_.get()).ok());

    // Regenerate the server's seeded attestation identities client-side: the
    // same --key-seed recipe serverd uses, so every restarted process
    // attests as the same enclave author on the same HGS.
    Bytes seed;
    PutU64(&seed, kKeySeed);
    crypto::HmacDrbg drbg(Slice(seed), Slice(std::string_view("aedb-serverd")));
    auto author_key = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key);
    hgs_ = std::make_unique<attestation::HostGuardianService>(Slice(seed));

    server_ = std::make_unique<testing::ServerProcess>(AEDB_SERVERD_PATH);
    port_ = std::make_shared<std::atomic<uint16_t>>(0);

    DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image_.AuthorId();
    auto port = port_;
    dopts.transport_factory =
        [port]() -> Result<std::unique_ptr<client::Transport>> {
      net::SocketTransport::Options topts;
      topts.port = port->load();
      auto t = net::SocketTransport::Connect(topts);
      if (!t.ok()) return t.status();
      return std::unique_ptr<client::Transport>(std::move(t).value());
    };
    driver_options_ = dopts;
  }

  void TearDown() override {
    driver_.reset();
    if (server_ != nullptr) (void)server_->Kill();
    if (std::getenv("AEDB_KEEP_CRASH_DIR") != nullptr) {
      // Debug aid: leave the data dir behind for post-mortem replay.
      std::fprintf(stderr, "torture: keeping data dir %s\n", data_dir_.c_str());
      return;
    }
    if (!data_dir_.empty()) {
      // Scratch data dirs are throwaway; a plain rm -rf equivalent.
      std::vector<std::string> files = ListDataDirFiles();
      for (const std::string& f : files) unlink(f.c_str());
      rmdir(data_dir_.c_str());
    }
  }

  /// Starts (or restarts) the server over the durable data dir. Returns
  /// false when the child died before serving — the expected outcome of a
  /// --die-at crash during startup recovery.
  bool StartServer(const std::vector<std::string>& die_at = {}) {
    std::vector<std::string> args = {
        "--port",       "0",
        "--data-dir",   data_dir_,
        "--key-seed",   std::to_string(kKeySeed),
        // Small threshold so background checkpoints really happen while the
        // harness is shooting at checkpoint-path fault points.
        "--checkpoint-bytes", "8192",
        "--drain-deadline-ms", "10000",
    };
    for (const std::string& d : die_at) {
      args.push_back("--die-at");
      args.push_back(d);
    }
    Status st = server_->Start(args);
    if (!st.ok()) return false;
    port_->store(server_->port());
    if (driver_ == nullptr) {
      auto t = driver_options_.transport_factory();
      EXPECT_TRUE(t.ok()) << t.status().ToString();
      driver_ = std::make_unique<Driver>(std::move(t).value(), &registry_,
                                         hgs_->signing_public(),
                                         driver_options_);
    }
    return true;
  }

  void ProvisionAndLoadTpcc() {
    ASSERT_TRUE(driver_
                    ->ProvisionCmk("TpccCMK", vault_->name(), kVaultPath,
                                   /*enclave_enabled=*/true)
                    .ok());
    ASSERT_TRUE(driver_->ProvisionCek("TpccCEK", "TpccCMK").ok());
    tpcc::TpccConfig config = TpccShape();
    tpcc::TpccLoader loader(driver_.get(), config);
    Status st = loader.CreateSchema();
    ASSERT_TRUE(st.ok()) << st.ToString();
    st = loader.Load();
    ASSERT_TRUE(st.ok()) << st.ToString();
    st = driver_->ExecuteDdl(
        "CREATE TABLE CommitLog ("
        "  Seq INT NOT NULL,"
        "  Tag VARCHAR(64) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = TpccCEK,"
        "    ENCRYPTION_TYPE = Randomized,"
        "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))");
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  static tpcc::TpccConfig TpccShape() {
    tpcc::TpccConfig config;
    config.warehouses = 1;
    config.districts_per_warehouse = 2;
    config.customers_per_district = 4;
    config.items = 20;
    config.initial_orders_per_district = 2;
    config.encryption = tpcc::Encryption::kRandomized;
    config.cek_name = "TpccCEK";
    return config;
  }

  static void Note(const std::string& what) {
    std::fprintf(stderr, "torture: %s\n", what.c_str());
  }

  /// Drives journaled commits (plus TPC-C terminal mix) until the server
  /// dies under it or `max_ops` succeed. Every acknowledged INSERT seq goes
  /// to acked_; a failed one is in-flight limbo (maybe_) — the crash may or
  /// may not have made it durable, and either outcome is legal.
  void DriveTraffic(tpcc::TpccTerminal* terminal, int max_ops) {
    for (int i = 0; i < max_ops; ++i) {
      uint64_t seq = next_seq_++;
      auto r = driver_->Query("INSERT INTO CommitLog (Seq, Tag) VALUES (@s, @t)",
                              {{"s", Value::Int32(static_cast<int32_t>(seq))},
                               {"t", Value::String(TagFor(seq))}});
      if (!r.ok()) {
        maybe_.insert(seq);
        return;
      }
      acked_.insert(seq);
      if (i % 4 == 3 && terminal != nullptr) {
        if (!terminal->RunOne().ok()) return;  // server died mid-TPC-C txn
      }
    }
  }

  /// The exact-prefix + zero-wrong-results check, run after every restart.
  void VerifySurvivors(const std::string& where) {
    auto r = driver_->Query("SELECT Seq, Tag FROM CommitLog");
    ASSERT_TRUE(r.ok()) << where << ": " << r.status().ToString();
    std::map<uint64_t, std::string> present;
    for (const auto& row : r->rows) {
      uint64_t seq = static_cast<uint64_t>(row[0].i32());
      ASSERT_EQ(present.count(seq), 0u)
          << where << ": seq " << seq << " duplicated (a statement replayed "
          << "non-idempotently)";
      present[seq] = row[1].str();
    }
    for (uint64_t seq : acked_) {
      auto it = present.find(seq);
      ASSERT_NE(it, present.end())
          << where << ": acknowledged commit seq " << seq
          << " lost after restart (durability violation)";
      ASSERT_EQ(it->second, TagFor(seq))
          << where << ": seq " << seq << " decrypted to the wrong payload";
    }
    for (const auto& [seq, tag] : present) {
      ASSERT_TRUE(acked_.count(seq) == 1 || maybe_.count(seq) == 1)
          << where << ": phantom seq " << seq << " was never issued";
      ASSERT_EQ(tag, TagFor(seq))
          << where << ": seq " << seq << " decrypted to the wrong payload";
    }
    // An enclave-evaluated predicate on the RND column: forces CEK install
    // into the fresh enclave (re-attestation + ResolveDeferred server-side)
    // and proves encrypted evaluation returns exact results post-crash.
    if (!acked_.empty()) {
      uint64_t probe = *acked_.rbegin();
      auto q = driver_->Query("SELECT Seq FROM CommitLog WHERE Tag = @t",
                              {{"t", Value::String(TagFor(probe))}});
      ASSERT_TRUE(q.ok()) << where << ": " << q.status().ToString();
      ASSERT_EQ(q->rows.size(), 1u) << where;
      EXPECT_EQ(static_cast<uint64_t>(q->rows[0][0].i32()), probe) << where;
    }
  }

  std::vector<std::string> ListDataDirFiles() const {
    std::vector<std::string> out;
    // The data dir is flat; reuse the durable-file helpers' naming.
    for (const char* name : {"wal.log", "ddl.log", "checkpoint.db",
                             "clean_shutdown", "checkpoint.db.tmp",
                             "wal.log.tmp"}) {
      std::string path = data_dir_ + "/" + name;
      if (storage::fsio::FileExists(path)) out.push_back(path);
    }
    return out;
  }

  std::string data_dir_;
  std::unique_ptr<keys::InMemoryKeyVault> vault_;
  keys::KeyProviderRegistry registry_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<testing::ServerProcess> server_;
  std::shared_ptr<std::atomic<uint16_t>> port_;
  DriverOptions driver_options_;
  std::unique_ptr<Driver> driver_;

  uint64_t next_seq_ = 1;
  std::set<uint64_t> acked_;  // server acknowledged the commit
  std::set<uint64_t> maybe_;  // in flight at crash time: either outcome legal
};

TEST_F(CrashTortureTest, AckedPrefixSurvivesTwentyPlusKillNineCycles) {
  const uint64_t seed_env =
      std::getenv("AEDB_CRASH_SEED") != nullptr
          ? strtoull(std::getenv("AEDB_CRASH_SEED"), nullptr, 10)
          : 0xC4A54ULL;
  Xoshiro256 rng(seed_env);

  // Phase A (protected from kills): boot, provision keys, create + load the
  // encrypted TPC-C schema, create the commit journal.
  ASSERT_TRUE(StartServer());
  Note("server up, loading TPC-C");
  ProvisionAndLoadTpcc();
  Note("TPC-C loaded, baseline traffic");
  tpcc::TpccTerminal terminal(driver_.get(), TpccShape(), /*seed=*/rng.Next());
  DriveTraffic(&terminal, 10);  // some pre-crash baseline traffic
  ASSERT_GE(acked_.size(), 10u);
  Note("baseline done, entering crash cycles");

  // Phase B: ≥20 seeded crash/restart cycles across the crash-point matrix.
  const int kCycles = 21;
  int attestations_seen = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    Note("cycle " + std::to_string(cycle) + " (mode " +
         std::to_string(cycle % 7) + "), acked=" +
         std::to_string(acked_.size()));
    const int mode = cycle % 7;
    bool die_armed = true;
    switch (mode) {
      case 0:
        ASSERT_TRUE(server_->Kill().ok());  // make room to restart armed
        ASSERT_TRUE(StartServer(
            {"wal/append:" + std::to_string(rng.Uniform(10, 60))}));
        break;
      case 1:
        ASSERT_TRUE(server_->Kill().ok());
        ASSERT_TRUE(StartServer(
            {"wal/sync:" + std::to_string(rng.Uniform(3, 25))}));
        break;
      case 2:
        // Mid-checkpoint publish: dies between the checkpoint tmp-file fsync
        // and its rename.
        ASSERT_TRUE(server_->Kill().ok());
        ASSERT_TRUE(StartServer({"fsio/pre_rename"}));
        break;
      case 3:
        // Checkpoint published but the WAL never truncated.
        ASSERT_TRUE(server_->Kill().ok());
        ASSERT_TRUE(StartServer({"ckpt/pre_truncate"}));
        break;
      default:
        die_armed = false;  // raw SIGKILL at a seeded random moment
        break;
    }
    if (!server_->running()) {
      // The armed fault fired during startup recovery itself; restart clean.
      ASSERT_TRUE(StartServer());
    }
    VerifySurvivors("pre-traffic");

    if (die_armed) {
      // Drive until the armed fault kills the server mid-operation.
      DriveTraffic(&terminal, 200);
      if (server_->running()) {
        // Fault never fired (e.g. checkpoint threshold not reached): crash
        // the old-fashioned way so the cycle still ends in kill -9.
        server_->KillAsync();
        DriveTraffic(&terminal, 50);
      }
    } else {
      // Killer thread: SIGKILL after a seeded random delay while the main
      // thread pumps traffic.
      const int delay_ms = static_cast<int>(rng.Uniform(10, 200));
      std::thread killer([this, delay_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        server_->KillAsync();
      });
      DriveTraffic(&terminal, 100000);
      killer.join();
    }
    ASSERT_TRUE(server_->WaitExit(nullptr).ok());

    // Every few cycles, make the NEXT recovery itself crash partway and
    // prove re-running it from the same files converges (idempotence).
    if (mode == 6) {
      bool served = StartServer({"recovery/replay:2"});
      if (served) {
        // Tail was too short to reach the fault during replay; kill it and
        // fall through to the clean restart.
        ASSERT_TRUE(server_->Kill().ok());
      }
    }
    ASSERT_TRUE(StartServer());
    VerifySurvivors("post-restart");
    attestations_seen = static_cast<int>(driver_->attestations());
  }
  // The single long-lived driver re-attested transparently across restarts —
  // no manual InvalidateSession, no application-visible ceremony.
  EXPECT_GT(attestations_seen, 1);
  EXPECT_GE(acked_.size(), 40u) << "torture produced too little traffic to "
                                   "mean anything";

  // Phase C: SIGTERM graceful drain — bounded, flushes, writes the
  // clean-shutdown marker, exits 0.
  int wait_status = 0;
  ASSERT_TRUE(server_->Terminate(&wait_status).ok());
  ASSERT_TRUE(WIFEXITED(wait_status))
      << "server did not exit cleanly on SIGTERM";
  EXPECT_EQ(WEXITSTATUS(wait_status), 0);
  EXPECT_TRUE(
      storage::fsio::FileExists(data_dir_ + "/clean_shutdown"));

  // The survivors are intact after a clean restart too.
  ASSERT_TRUE(StartServer());
  VerifySurvivors("post-clean-shutdown");

  // Ciphertext at rest: no plaintext of any encrypted column — TPC-C
  // customer last names (LastName syllables) or the journal payloads — may
  // appear in any byte the server ever wrote durably.
  ASSERT_TRUE(server_->Kill().ok());
  // "BARBAR" prefixes every loaded customer's C_LAST (LastName(0..3)).
  const std::vector<std::string> secrets = {"CONFIDENTIAL-PAYLOAD", "BARBAR"};
  size_t scanned = 0;
  for (const std::string& file : ListDataDirFiles()) {
    auto bytes = storage::fsio::ReadFileBytes(file);
    ASSERT_TRUE(bytes.ok()) << file;
    scanned += bytes->size();
    std::string_view haystack(reinterpret_cast<const char*>(bytes->data()),
                              bytes->size());
    for (const std::string& secret : secrets) {
      EXPECT_EQ(haystack.find(secret), std::string_view::npos)
          << "plaintext '" << secret << "' at rest in " << file;
    }
  }
  EXPECT_GT(scanned, 0u);
}

}  // namespace
}  // namespace aedb
