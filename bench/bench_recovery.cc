// Durability ablation (ISSUE 7 satellite): recovery time as a function of
// WAL length, with and without a checkpoint — the motivation for threshold
// checkpointing — plus the commit-durability cost (fsyncs per committed
// transaction). Emits BENCH_recovery.json.
//
// Method: boot a durable Database over a scratch data dir, run N single-row
// encrypted-INSERT transactions, tear the process stand-in down WITHOUT
// Shutdown() (what kill -9 leaves behind), and time the next Open(). The
// checkpointed variant takes one checkpoint at ~90% of the load so recovery
// is checkpoint-load + small tail instead of full replay.

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "server/database.h"
#include "storage/fsio.h"

namespace aedb::bench {
namespace {

using types::Value;

struct Deployment {
  std::unique_ptr<keys::InMemoryKeyVault> vault;
  keys::KeyProviderRegistry registry;
  crypto::RsaPrivateKey author;
  enclave::EnclaveImage image;
  std::unique_ptr<attestation::HostGuardianService> hgs;
  std::unique_ptr<server::Database> db;
  std::unique_ptr<client::Driver> driver;
  std::string data_dir;

  /// (Re)creates the server-side stack over data_dir and opens it; the vault
  /// and attestation identities persist across "restarts" like real client
  /// custody does. Returns Open() wall time in milliseconds.
  double Boot() {
    driver.reset();
    db.reset();
    Bytes seed;
    PutU64(&seed, 4242);
    hgs = std::make_unique<attestation::HostGuardianService>(Slice(seed));
    server::ServerOptions opts;
    opts.data_dir = data_dir;
    db = std::make_unique<server::Database>(opts, hgs.get(), &image);
    hgs->RegisterTcgLog(db->platform()->tcg_log());
    auto start = std::chrono::steady_clock::now();
    Status st = db->Open();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!st.ok()) {
      std::fprintf(stderr, "Open failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    client::DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image.AuthorId();
    driver = std::make_unique<client::Driver>(db.get(), &registry,
                                              hgs->signing_public(), dopts);
    return ms;
  }
};

std::unique_ptr<Deployment> MakeDeployment(const std::string& data_dir) {
  auto d = std::make_unique<Deployment>();
  d->data_dir = data_dir;
  d->vault = std::make_unique<keys::InMemoryKeyVault>();
  (void)d->vault->CreateKey("kv/cmk", 1024);
  (void)d->registry.Register(d->vault.get());
  Bytes seed;
  PutU64(&seed, 4242);
  crypto::HmacDrbg drbg(Slice(seed), Slice(std::string_view("aedb-serverd")));
  d->author = crypto::GenerateRsaKey(1024, &drbg);
  d->image = enclave::EnclaveImage::MakeEsImage(1, d->author);
  return d;
}

void MustOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void Provision(client::Driver* driver) {
  MustOk(driver->ProvisionCmk("BenchCMK", "AZURE_KEY_VAULT_PROVIDER", "kv/cmk",
                              /*enclave_enabled=*/true),
         "ProvisionCmk");
  MustOk(driver->ProvisionCek("BenchCEK", "BenchCMK"), "ProvisionCek");
  MustOk(driver->ExecuteDdl(
             "CREATE TABLE Ledger ("
             "  ID INT NOT NULL,"
             "  Payload VARCHAR(64) ENCRYPTED WITH ("
             "    COLUMN_ENCRYPTION_KEY = BenchCEK,"
             "    ENCRYPTION_TYPE = Randomized,"
             "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))"),
         "CREATE TABLE");
}

/// One committed transaction == one INSERT (the worst case for the
/// fsync-per-commit ratio: no group amortization).
void LoadRows(client::Driver* driver, int from, int to) {
  for (int i = from; i < to; ++i) {
    auto r = driver->Query(
        "INSERT INTO Ledger (ID, Payload) VALUES (@id, @p)",
        {{"id", Value::Int32(i)},
         {"p", Value::String("row-" + std::to_string(i) + "-payload")}});
    MustOk(r.status(), "INSERT");
  }
}

struct Point {
  int rows;
  bool checkpointed;
  uint64_t wal_bytes;
  uint64_t wal_records_replayed;
  uint64_t ddl_statements_replayed;
  double open_ms;
  uint64_t recovery_ms;
  uint64_t committed;   // committed txns during the load phase
  uint64_t fsyncs;      // fsyncs during the load phase
};

Point RunOne(int rows, bool checkpointed) {
  char templ[] = "/tmp/aedb_bench_recovery_XXXXXX";
  char* dir = mkdtemp(templ);
  if (dir == nullptr) std::exit(1);
  auto d = MakeDeployment(dir);
  (void)d->Boot();
  Provision(d->driver.get());

  server::DatabaseStats before = d->db->Stats();
  if (checkpointed) {
    // Load to ~90%, checkpoint, then the tail: recovery = image + 10%.
    LoadRows(d->driver.get(), 0, rows * 9 / 10);
    MustOk(d->db->Checkpoint(), "Checkpoint");
    LoadRows(d->driver.get(), rows * 9 / 10, rows);
  } else {
    LoadRows(d->driver.get(), 0, rows);
  }
  server::DatabaseStats after = d->db->Stats();

  Point p;
  p.rows = rows;
  p.checkpointed = checkpointed;
  p.wal_bytes = after.wal_bytes;
  p.committed = static_cast<uint64_t>(rows) + 3;  // + CMK/CEK/DDL round trips
  p.fsyncs = after.fsyncs - before.fsyncs;

  // kill -9 stand-in: drop everything without Shutdown(), reboot, time it.
  p.open_ms = d->Boot();
  const server::Database::RecoveryInfo& ri = d->db->recovery_info();
  p.recovery_ms = ri.recovery_ms;
  p.wal_records_replayed = ri.wal_records_replayed;
  p.ddl_statements_replayed = ri.ddl_statements_replayed;

  // Sanity: every row must have survived.
  auto all = d->driver->Query("SELECT ID FROM Ledger");
  MustOk(all.status(), "verify SELECT");
  if (all->rows.size() != static_cast<size_t>(rows)) {
    std::fprintf(stderr, "verify: %zu rows survived, expected %d\n",
                 all->rows.size(), rows);
    std::exit(1);
  }

  d->driver.reset();
  d->db.reset();
  for (const char* f :
       {"/wal.log", "/ddl.log", "/checkpoint.db", "/clean_shutdown"}) {
    (void)unlink((d->data_dir + f).c_str());
  }
  (void)rmdir(d->data_dir.c_str());
  return p;
}

int Main() {
  std::printf("Recovery time vs WAL length (durable data dir, encrypted "
              "single-row commits)\n\n");
  std::printf("%6s %12s %10s %9s %9s %8s %14s\n", "rows", "checkpoint",
              "wal_bytes", "replayed", "open_ms", "rec_ms", "fsync/commit");

  std::vector<Point> points;
  for (int rows : {250, 1000, 4000}) {
    for (bool ckpt : {false, true}) {
      Point p = RunOne(rows, ckpt);
      points.push_back(p);
      std::printf("%6d %12s %10llu %9llu %9.1f %8llu %14.2f\n", p.rows,
                  p.checkpointed ? "yes" : "no",
                  static_cast<unsigned long long>(p.wal_bytes),
                  static_cast<unsigned long long>(p.wal_records_replayed),
                  p.open_ms, static_cast<unsigned long long>(p.recovery_ms),
                  static_cast<double>(p.fsyncs) /
                      static_cast<double>(p.committed));
    }
  }

  FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"sweep\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(
          f,
          "    {\"rows\": %d, \"checkpointed\": %s, \"wal_bytes\": %llu, "
          "\"wal_records_replayed\": %llu, \"ddl_statements_replayed\": %llu, "
          "\"open_ms\": %.2f, \"recovery_ms\": %llu, "
          "\"committed_txns\": %llu, \"fsyncs\": %llu, "
          "\"fsyncs_per_commit\": %.3f}%s\n",
          p.rows, p.checkpointed ? "true" : "false",
          static_cast<unsigned long long>(p.wal_bytes),
          static_cast<unsigned long long>(p.wal_records_replayed),
          static_cast<unsigned long long>(p.ddl_statements_replayed),
          p.open_ms, static_cast<unsigned long long>(p.recovery_ms),
          static_cast<unsigned long long>(p.committed),
          static_cast<unsigned long long>(p.fsyncs),
          static_cast<double>(p.fsyncs) / static_cast<double>(p.committed),
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_recovery.json\n");
  }

  // The point of checkpointing: the largest sweep's recovery must be faster
  // with a checkpoint than without.
  double plain = 0, with_ckpt = 0;
  for (const Point& p : points) {
    if (p.rows != 4000) continue;
    (p.checkpointed ? with_ckpt : plain) = p.open_ms;
  }
  if (with_ckpt >= plain) {
    std::printf("note: checkpointed recovery (%.1fms) was not faster than "
                "full replay (%.1fms) at this scale\n", with_ckpt, plain);
  }
  return 0;
}

}  // namespace
}  // namespace aedb::bench

int main() { return aedb::bench::Main(); }
