// Durability ablation: recovery time as a function of WAL length, with and
// without a checkpoint — the motivation for threshold checkpointing — plus
// the commit-durability cost (fsyncs per committed transaction). Emits
// BENCH_recovery.json.
//
// Second sweep: group commit × buffer-pool size under concurrent TPC-C
// (8 terminals, durable WAL). Measures commits per fsync and throughput
// against the per-commit-fsync baseline. Emits BENCH_commit.json.
//
// Method: boot a durable Database over a scratch data dir, run N single-row
// encrypted-INSERT transactions, tear the process stand-in down WITHOUT
// Shutdown() (what kill -9 leaves behind), and time the next Open(). The
// checkpointed variant takes one checkpoint at ~90% of the load so recovery
// is checkpoint-load + small tail instead of full replay.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "server/database.h"
#include "storage/fsio.h"
#include "tpcc/tpcc.h"

namespace aedb::bench {
namespace {

using types::Value;

struct Deployment {
  std::unique_ptr<keys::InMemoryKeyVault> vault;
  keys::KeyProviderRegistry registry;
  crypto::RsaPrivateKey author;
  enclave::EnclaveImage image;
  std::unique_ptr<attestation::HostGuardianService> hgs;
  std::unique_ptr<server::Database> db;
  std::unique_ptr<client::Driver> driver;
  std::string data_dir;
  storage::EngineOptions engine_opts;  // pool size / flusher / group commit

  /// (Re)creates the server-side stack over data_dir and opens it; the vault
  /// and attestation identities persist across "restarts" like real client
  /// custody does. Returns Open() wall time in milliseconds.
  double Boot() {
    driver.reset();
    db.reset();
    Bytes seed;
    PutU64(&seed, 4242);
    hgs = std::make_unique<attestation::HostGuardianService>(Slice(seed));
    server::ServerOptions opts;
    opts.data_dir = data_dir;
    opts.engine = engine_opts;
    db = std::make_unique<server::Database>(opts, hgs.get(), &image);
    hgs->RegisterTcgLog(db->platform()->tcg_log());
    auto start = std::chrono::steady_clock::now();
    Status st = db->Open();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!st.ok()) {
      std::fprintf(stderr, "Open failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    client::DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image.AuthorId();
    driver = std::make_unique<client::Driver>(db.get(), &registry,
                                              hgs->signing_public(), dopts);
    return ms;
  }

  /// An extra session over the same open database (TPC-C terminals).
  std::unique_ptr<client::Driver> MakeDriver() {
    client::DriverOptions dopts;
    dopts.enclave_policy.trusted_author_id = image.AuthorId();
    return std::make_unique<client::Driver>(db.get(), &registry,
                                            hgs->signing_public(), dopts);
  }
};

/// Removes the FilePageStore spill directory (`<dir>/pages/obj-*.pages`) so
/// the scratch data dir can be rmdir'd.
void RemovePagesDir(const std::string& data_dir) {
  std::string pages = data_dir + "/pages";
  DIR* d = opendir(pages.c_str());
  if (d != nullptr) {
    while (struct dirent* e = readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      (void)unlink((pages + "/" + name).c_str());
    }
    closedir(d);
  }
  (void)rmdir(pages.c_str());
}

std::unique_ptr<Deployment> MakeDeployment(const std::string& data_dir) {
  auto d = std::make_unique<Deployment>();
  d->data_dir = data_dir;
  d->vault = std::make_unique<keys::InMemoryKeyVault>();
  (void)d->vault->CreateKey("kv/cmk", 1024);
  (void)d->registry.Register(d->vault.get());
  Bytes seed;
  PutU64(&seed, 4242);
  crypto::HmacDrbg drbg(Slice(seed), Slice(std::string_view("aedb-serverd")));
  d->author = crypto::GenerateRsaKey(1024, &drbg);
  d->image = enclave::EnclaveImage::MakeEsImage(1, d->author);
  return d;
}

void MustOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void Provision(client::Driver* driver) {
  MustOk(driver->ProvisionCmk("BenchCMK", "AZURE_KEY_VAULT_PROVIDER", "kv/cmk",
                              /*enclave_enabled=*/true),
         "ProvisionCmk");
  MustOk(driver->ProvisionCek("BenchCEK", "BenchCMK"), "ProvisionCek");
  MustOk(driver->ExecuteDdl(
             "CREATE TABLE Ledger ("
             "  ID INT NOT NULL,"
             "  Payload VARCHAR(64) ENCRYPTED WITH ("
             "    COLUMN_ENCRYPTION_KEY = BenchCEK,"
             "    ENCRYPTION_TYPE = Randomized,"
             "    ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))"),
         "CREATE TABLE");
}

/// One committed transaction == one INSERT (the worst case for the
/// fsync-per-commit ratio: no group amortization).
void LoadRows(client::Driver* driver, int from, int to) {
  for (int i = from; i < to; ++i) {
    auto r = driver->Query(
        "INSERT INTO Ledger (ID, Payload) VALUES (@id, @p)",
        {{"id", Value::Int32(i)},
         {"p", Value::String("row-" + std::to_string(i) + "-payload")}});
    MustOk(r.status(), "INSERT");
  }
}

struct Point {
  int rows;
  bool checkpointed;
  uint64_t wal_bytes;
  uint64_t wal_records_replayed;
  uint64_t ddl_statements_replayed;
  double open_ms;
  uint64_t recovery_ms;
  uint64_t committed;   // committed txns during the load phase
  uint64_t fsyncs;      // fsyncs during the load phase
};

Point RunOne(int rows, bool checkpointed) {
  char templ[] = "/tmp/aedb_bench_recovery_XXXXXX";
  char* dir = mkdtemp(templ);
  if (dir == nullptr) std::exit(1);
  auto d = MakeDeployment(dir);
  (void)d->Boot();
  Provision(d->driver.get());

  server::DatabaseStats before = d->db->Stats();
  if (checkpointed) {
    // Load to ~90%, checkpoint, then the tail: recovery = image + 10%.
    LoadRows(d->driver.get(), 0, rows * 9 / 10);
    MustOk(d->db->Checkpoint(), "Checkpoint");
    LoadRows(d->driver.get(), rows * 9 / 10, rows);
  } else {
    LoadRows(d->driver.get(), 0, rows);
  }
  server::DatabaseStats after = d->db->Stats();

  Point p;
  p.rows = rows;
  p.checkpointed = checkpointed;
  p.wal_bytes = after.wal_bytes;
  p.committed = static_cast<uint64_t>(rows) + 3;  // + CMK/CEK/DDL round trips
  p.fsyncs = after.fsyncs - before.fsyncs;

  // kill -9 stand-in: drop everything without Shutdown(), reboot, time it.
  p.open_ms = d->Boot();
  const server::Database::RecoveryInfo& ri = d->db->recovery_info();
  p.recovery_ms = ri.recovery_ms;
  p.wal_records_replayed = ri.wal_records_replayed;
  p.ddl_statements_replayed = ri.ddl_statements_replayed;

  // Sanity: every row must have survived.
  auto all = d->driver->Query("SELECT ID FROM Ledger");
  MustOk(all.status(), "verify SELECT");
  if (all->rows.size() != static_cast<size_t>(rows)) {
    std::fprintf(stderr, "verify: %zu rows survived, expected %d\n",
                 all->rows.size(), rows);
    std::exit(1);
  }

  d->driver.reset();
  d->db.reset();
  for (const char* f :
       {"/wal.log", "/ddl.log", "/checkpoint.db", "/clean_shutdown"}) {
    (void)unlink((d->data_dir + f).c_str());
  }
  RemovePagesDir(d->data_dir);
  (void)rmdir(d->data_dir.c_str());
  return p;
}

// ---------------------------------------------------------------------------
// Group commit × pool size under concurrent TPC-C

struct CommitPoint {
  uint64_t window_us;
  uint64_t pool_pages;  // 0 = unbounded
  uint64_t committed;
  double seconds;
  double txn_per_second;
  double commits_per_fsync;
  uint64_t pool_evictions;
};

CommitPoint RunCommitPoint(uint64_t window_us, uint64_t pool_pages,
                           int threads, uint64_t target) {
  char templ[] = "/tmp/aedb_bench_commit_XXXXXX";
  char* dir = mkdtemp(templ);
  if (dir == nullptr) std::exit(1);
  auto d = MakeDeployment(dir);
  d->engine_opts.group_commit_window_us = window_us;
  d->engine_opts.pool_pages = pool_pages;
  (void)d->Boot();

  // Small scale: the sweep axis is the commit/pool configuration, not TPC-C
  // contention, and the loader dominates wall time at bigger sizes.
  tpcc::TpccConfig config;
  config.warehouses = 2;
  config.districts_per_warehouse = 4;
  config.customers_per_district = 20;
  config.initial_orders_per_district = 5;
  config.encryption = tpcc::Encryption::kPlaintext;
  {
    auto loader_driver = d->MakeDriver();
    tpcc::TpccLoader loader(loader_driver.get(), config);
    MustOk(loader.CreateSchema(), "tpcc CreateSchema");
    MustOk(loader.Load(), "tpcc Load");
  }

  server::DatabaseStats before = d->db->Stats();
  tpcc::BenchcraftResult run = tpcc::RunBenchcraftCount(
      [&] { return d->MakeDriver(); }, config, threads, target,
      /*deadline_seconds=*/120);
  if (!run.first_error.empty()) {
    std::fprintf(stderr, "tpcc: %s\n", run.first_error.c_str());
    std::exit(1);
  }
  server::DatabaseStats after = d->db->Stats();

  CommitPoint p;
  p.window_us = window_us;
  p.pool_pages = pool_pages;
  p.committed = run.committed;
  p.seconds = run.seconds;
  p.txn_per_second = run.txn_per_second;
  uint64_t requests = after.commit_sync_requests - before.commit_sync_requests;
  uint64_t batches = after.group_commit_batches - before.group_commit_batches;
  p.commits_per_fsync =
      batches == 0 ? 0.0
                   : static_cast<double>(requests) / static_cast<double>(batches);
  p.pool_evictions = after.pool_evictions - before.pool_evictions;

  d->driver.reset();
  d->db.reset();
  for (const char* f :
       {"/wal.log", "/ddl.log", "/checkpoint.db", "/clean_shutdown"}) {
    (void)unlink((d->data_dir + f).c_str());
  }
  RemovePagesDir(d->data_dir);
  (void)rmdir(d->data_dir.c_str());
  return p;
}

/// Commit-bound amortization probe: `threads` sessions race single-row
/// encrypted INSERT transactions (the lightest possible commit). TPC-C
/// transactions are execution-heavy, so their commits arrive too far apart
/// for any window to overlap; this is the workload where group commit's
/// one-fsync-per-cohort discipline actually shows its multiplier.
CommitPoint RunLedgerPoint(uint64_t window_us, int threads, int per_thread) {
  char templ[] = "/tmp/aedb_bench_commit_XXXXXX";
  char* dir = mkdtemp(templ);
  if (dir == nullptr) std::exit(1);
  auto d = MakeDeployment(dir);
  d->engine_opts.group_commit_window_us = window_us;
  (void)d->Boot();
  Provision(d->driver.get());

  server::DatabaseStats before = d->db->Stats();
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto driver = d->MakeDriver();
      for (int i = 0; i < per_thread; ++i) {
        int id = t * per_thread + i;
        auto r = driver->Query(
            "INSERT INTO Ledger (ID, Payload) VALUES (@id, @p)",
            {{"id", Value::Int32(id)},
             {"p", Value::String("gc-" + std::to_string(id))}});
        MustOk(r.status(), "ledger INSERT");
      }
    });
  }
  for (auto& w : workers) w.join();
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  server::DatabaseStats after = d->db->Stats();

  CommitPoint p;
  p.window_us = window_us;
  p.pool_pages = 0;
  p.committed = static_cast<uint64_t>(threads) * per_thread;
  p.seconds = seconds;
  p.txn_per_second = seconds > 0 ? p.committed / seconds : 0;
  uint64_t requests = after.commit_sync_requests - before.commit_sync_requests;
  uint64_t batches = after.group_commit_batches - before.group_commit_batches;
  p.commits_per_fsync =
      batches == 0 ? 0.0
                   : static_cast<double>(requests) / static_cast<double>(batches);
  p.pool_evictions = 0;

  d->driver.reset();
  d->db.reset();
  for (const char* f :
       {"/wal.log", "/ddl.log", "/checkpoint.db", "/clean_shutdown"}) {
    (void)unlink((d->data_dir + f).c_str());
  }
  RemovePagesDir(d->data_dir);
  (void)rmdir(d->data_dir.c_str());
  return p;
}

int Main() {
  std::printf("Recovery time vs WAL length (durable data dir, encrypted "
              "single-row commits)\n\n");
  std::printf("%6s %12s %10s %9s %9s %8s %14s\n", "rows", "checkpoint",
              "wal_bytes", "replayed", "open_ms", "rec_ms", "fsync/commit");

  std::vector<Point> points;
  for (int rows : {250, 1000, 4000}) {
    for (bool ckpt : {false, true}) {
      Point p = RunOne(rows, ckpt);
      points.push_back(p);
      std::printf("%6d %12s %10llu %9llu %9.1f %8llu %14.2f\n", p.rows,
                  p.checkpointed ? "yes" : "no",
                  static_cast<unsigned long long>(p.wal_bytes),
                  static_cast<unsigned long long>(p.wal_records_replayed),
                  p.open_ms, static_cast<unsigned long long>(p.recovery_ms),
                  static_cast<double>(p.fsyncs) /
                      static_cast<double>(p.committed));
    }
  }

  FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"sweep\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(
          f,
          "    {\"rows\": %d, \"checkpointed\": %s, \"wal_bytes\": %llu, "
          "\"wal_records_replayed\": %llu, \"ddl_statements_replayed\": %llu, "
          "\"open_ms\": %.2f, \"recovery_ms\": %llu, "
          "\"committed_txns\": %llu, \"fsyncs\": %llu, "
          "\"fsyncs_per_commit\": %.3f}%s\n",
          p.rows, p.checkpointed ? "true" : "false",
          static_cast<unsigned long long>(p.wal_bytes),
          static_cast<unsigned long long>(p.wal_records_replayed),
          static_cast<unsigned long long>(p.ddl_statements_replayed),
          p.open_ms, static_cast<unsigned long long>(p.recovery_ms),
          static_cast<unsigned long long>(p.committed),
          static_cast<unsigned long long>(p.fsyncs),
          static_cast<double>(p.fsyncs) / static_cast<double>(p.committed),
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_recovery.json\n");
  }

  // The point of checkpointing: the largest sweep's recovery must be faster
  // with a checkpoint than without.
  double plain = 0, with_ckpt = 0;
  for (const Point& p : points) {
    if (p.rows != 4000) continue;
    (p.checkpointed ? with_ckpt : plain) = p.open_ms;
  }
  if (with_ckpt >= plain) {
    std::printf("note: checkpointed recovery (%.1fms) was not faster than "
                "full replay (%.1fms) at this scale\n", with_ckpt, plain);
  }

  std::printf("\nGroup commit x pool size under TPC-C (8 terminals, durable "
              "WAL, fsync per cohort)\n\n");
  std::printf("%10s %10s %9s %8s %8s %14s %10s\n", "window_us", "pool_pages",
              "committed", "seconds", "txn/s", "commits/fsync", "evictions");

  std::vector<CommitPoint> cpoints;
  const int kThreads = 8;
  const uint64_t kTarget = 400;
  for (uint64_t pool : {uint64_t{0}, uint64_t{64}}) {
    for (uint64_t window : {uint64_t{0}, uint64_t{200}}) {
      CommitPoint p = RunCommitPoint(window, pool, kThreads, kTarget);
      cpoints.push_back(p);
      std::printf("%10llu %10llu %9llu %8.2f %8.1f %14.2f %10llu\n",
                  static_cast<unsigned long long>(p.window_us),
                  static_cast<unsigned long long>(p.pool_pages),
                  static_cast<unsigned long long>(p.committed), p.seconds,
                  p.txn_per_second, p.commits_per_fsync,
                  static_cast<unsigned long long>(p.pool_evictions));
    }
  }

  std::printf("\nCommit-bound amortization (8 sessions, single-row encrypted "
              "INSERT transactions)\n\n");
  std::printf("%10s %9s %8s %8s %14s\n", "window_us", "committed", "seconds",
              "txn/s", "commits/fsync");
  std::vector<CommitPoint> lpoints;
  for (uint64_t window : {uint64_t{0}, uint64_t{200}}) {
    CommitPoint p = RunLedgerPoint(window, kThreads, /*per_thread=*/100);
    lpoints.push_back(p);
    std::printf("%10llu %9llu %8.2f %8.1f %14.2f\n",
                static_cast<unsigned long long>(p.window_us),
                static_cast<unsigned long long>(p.committed), p.seconds,
                p.txn_per_second, p.commits_per_fsync);
  }

  f = std::fopen("BENCH_commit.json", "w");
  if (f != nullptr) {
    auto emit = [&](const std::vector<CommitPoint>& pts, bool with_pool) {
      for (size_t i = 0; i < pts.size(); ++i) {
        const CommitPoint& p = pts[i];
        std::fprintf(f, "    {\"group_commit_window_us\": %llu, ",
                     static_cast<unsigned long long>(p.window_us));
        if (with_pool) {
          std::fprintf(f, "\"pool_pages\": %llu, ",
                       static_cast<unsigned long long>(p.pool_pages));
        }
        std::fprintf(
            f,
            "\"committed\": %llu, \"seconds\": %.3f, "
            "\"txn_per_second\": %.1f, \"commits_per_fsync\": %.3f",
            static_cast<unsigned long long>(p.committed), p.seconds,
            p.txn_per_second, p.commits_per_fsync);
        if (with_pool) {
          std::fprintf(f, ", \"pool_evictions\": %llu",
                       static_cast<unsigned long long>(p.pool_evictions));
        }
        std::fprintf(f, "}%s\n", i + 1 < pts.size() ? "," : "");
      }
    };
    std::fprintf(f, "{\n  \"threads\": %d,\n  \"tpcc_sweep\": [\n", kThreads);
    emit(cpoints, /*with_pool=*/true);
    std::fprintf(f, "  ],\n  \"commit_bound_sweep\": [\n");
    emit(lpoints, /*with_pool=*/false);
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_commit.json\n");
  }

  // The point of group commit: with 8 commit-bound sessions a 200us window
  // must amortize several commits onto each fsync (acceptance floor: 4x).
  for (const CommitPoint& p : lpoints) {
    if (p.window_us > 0 && p.commits_per_fsync < 4.0) {
      std::printf("note: commits/fsync %.2f below the 4x group-commit "
                  "target\n", p.commits_per_fsync);
    }
  }
  return 0;
}

}  // namespace
}  // namespace aedb::bench

int main() { return aedb::bench::Main(); }
