// Network-layer overhead: what does a loopback TCP round trip through the
// aedb wire protocol cost against the in-process call path?
//
//   1. raw frame RTT (Ping/Pong: codec + syscalls, no SQL),
//   2. point SELECT through the AE driver, in-process vs SocketTransport,
//      plaintext and encrypted (DET) columns,
//   3. a short TPC-C burst over both paths (the loopback harness mode).
//
// The delta between paths is pure network-subsystem overhead: both run the
// same driver logic against the same Database.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "fault/fault.h"
#include "tpcc_bench_common.h"

namespace aedb::bench {
namespace {

using aedb::QueryContext;
using aedb::ScopedQueryContext;
using Clock = std::chrono::steady_clock;
using types::Value;

double MedianUs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0.0 : samples[samples.size() / 2];
}

template <typename Fn>
double TimeOpsUs(int iters, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(iters);
  for (int i = 0; i < iters; ++i) {
    auto t0 = Clock::now();
    if (!fn()) return -1.0;
    auto t1 = Clock::now();
    samples.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return MedianUs(samples);
}

int Run() {
  tpcc::TpccConfig tpcc_config;
  tpcc_config.warehouses = 1;
  tpcc_config.customers_per_district = 10;
  tpcc_config.initial_orders_per_district = 5;

  SystemConfig system;
  system.name = "SQL-AE-DET";
  system.encryption = tpcc::Encryption::kDeterministic;
  system.cache_describe = true;

  auto d = SetUpDeployment(system, tpcc_config, /*network_us=*/0,
                           /*enclave_transition_ns=*/0);
  if (!d) {
    std::fprintf(stderr, "deployment setup failed\n");
    return 1;
  }
  Status st = d->EnableLoopback();
  if (!st.ok()) {
    std::fprintf(stderr, "loopback start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  constexpr int kIters = 2000;

  // --- 1. raw frame round trip (no SQL) ---
  net::SocketTransport::Options topts;
  topts.port = d->net_server->port();
  auto ping_conn = net::SocketTransport::Connect(topts);
  if (!ping_conn.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 ping_conn.status().ToString().c_str());
    return 1;
  }
  double ping_us = TimeOpsUs(kIters, [&] { return (*ping_conn)->Ping().ok(); });

  // --- 2. point SELECT through the driver on both paths ---
  d->loopback = false;
  auto inproc = d->MakeDriver();
  d->loopback = true;
  auto socket = d->MakeDriver();
  if (!inproc || !socket) {
    std::fprintf(stderr, "driver construction failed\n");
    return 1;
  }

  const std::string plain_sql =
      "SELECT D_NAME FROM District WHERE D_W_ID = @w AND D_ID = @d";
  const std::string enc_sql =
      "SELECT C_FIRST, C_LAST FROM Customer WHERE C_W_ID = @w AND C_D_ID = @d "
      "AND C_ID = @c";
  auto plain_params = [] {
    return client::NamedParams{{"w", Value::Int32(1)}, {"d", Value::Int32(1)}};
  };
  auto enc_params = [] {
    return client::NamedParams{{"w", Value::Int32(1)},
                               {"d", Value::Int32(1)},
                               {"c", Value::Int32(1)}};
  };

  auto query_ok = [](client::Driver* drv, const std::string& sql,
                     const client::NamedParams& params) {
    auto rs = drv->Query(sql, params);
    return rs.ok() && !rs->rows.empty();
  };

  double inproc_plain =
      TimeOpsUs(kIters, [&] { return query_ok(inproc.get(), plain_sql, plain_params()); });
  double socket_plain =
      TimeOpsUs(kIters, [&] { return query_ok(socket.get(), plain_sql, plain_params()); });
  double inproc_enc =
      TimeOpsUs(kIters, [&] { return query_ok(inproc.get(), enc_sql, enc_params()); });
  double socket_enc =
      TimeOpsUs(kIters, [&] { return query_ok(socket.get(), enc_sql, enc_params()); });
  if (inproc_plain < 0 || socket_plain < 0 || inproc_enc < 0 || socket_enc < 0) {
    std::fprintf(stderr, "query failed during timing loop\n");
    return 1;
  }

  std::printf("# bench_net: loopback TCP vs in-process (median us/op, %d ops)\n",
              kIters);
  std::printf("%-32s %10.1f\n", "frame_rtt_ping", ping_us);
  std::printf("%-32s %10.1f\n", "select_plain_inprocess", inproc_plain);
  std::printf("%-32s %10.1f  (+%.1f us)\n", "select_plain_socket", socket_plain,
              socket_plain - inproc_plain);
  std::printf("%-32s %10.1f\n", "select_encrypted_inprocess", inproc_enc);
  std::printf("%-32s %10.1f  (+%.1f us)\n", "select_encrypted_socket",
              socket_enc, socket_enc - inproc_enc);

  // --- 3. TPC-C burst over both paths ---
  d->loopback = false;
  auto r_inproc = RunConfig(d.get(), /*threads=*/2, /*seconds=*/2.0);
  d->loopback = true;
  auto r_socket = RunConfig(d.get(), /*threads=*/2, /*seconds=*/2.0);
  std::printf("%-32s %10.0f txn/s (%llu committed)\n", "tpcc_inprocess",
              r_inproc.txn_per_second,
              static_cast<unsigned long long>(r_inproc.committed));
  std::printf("%-32s %10.0f txn/s (%llu committed)\n", "tpcc_socket",
              r_socket.txn_per_second,
              static_cast<unsigned long long>(r_socket.committed));

  // --- 4. fault-injection overhead when disarmed ---
  // Every AEDB_FAULT_POINT compiles to one relaxed atomic load when nothing
  // is armed. Time the macro in a tight loop and express its cost relative
  // to the plain-SELECT round trip; the guard fails if the registry's fast
  // path ever grows past 1% of a request.
  constexpr int kFaultIters = 1 << 22;
  volatile uint64_t sink = 0;
  auto f0 = Clock::now();
  for (int i = 0; i < kFaultIters; ++i) {
    Status fst = AEDB_FAULT_POINT("bench/disarmed_probe");
    sink = sink + (fst.ok() ? 1 : 0);
  }
  auto f1 = Clock::now();
  double point_ns =
      std::chrono::duration<double, std::nano>(f1 - f0).count() / kFaultIters;
  // A request path crosses only a handful of fault points; budget 16.
  double per_request_us = 16.0 * point_ns / 1000.0;
  double overhead_pct = 100.0 * per_request_us / socket_plain;
  std::printf("%-32s %10.2f ns/point (x16 = %.3f us, %.3f%% of plain "
              "socket SELECT) %s\n",
              "fault_point_disarmed", point_ns, per_request_us, overhead_pct,
              overhead_pct < 1.0 ? "[OK <1%]" : "[FAIL >=1%]");
  if (overhead_pct >= 1.0) return 1;

  // --- 5. deadline-check overhead when no deadline is armed ---
  // The executor calls QueryContext::Current()->Check() at every morsel
  // boundary. The gated quantity is the DISARMED shape — queries with no
  // deadline, i.e. every query before this PR — where the check is a single
  // thread-local read: ~64 morsel boundaries per request at bench scale must
  // stay under 1% of the plain loopback SELECT. The armed shape additionally
  // pays a steady-clock read per check; it is reported (queries that opt into
  // a budget buy those reads) but only the always-on cost gates.
  constexpr int kDeadlineIters = 1 << 22;
  auto d0 = Clock::now();
  for (int i = 0; i < kDeadlineIters; ++i) {
    const QueryContext* q = QueryContext::Current();
    Status dst = q == nullptr ? Status::OK() : q->Check();
    sink = sink + (dst.ok() ? 1 : 0);
  }
  auto d1 = Clock::now();
  double nodl_ns =
      std::chrono::duration<double, std::nano>(d1 - d0).count() / kDeadlineIters;

  QueryContext armed = QueryContext::WithDeadlineAfter(std::chrono::hours(1));
  ScopedQueryContext scoped(&armed);
  auto d2 = Clock::now();
  for (int i = 0; i < kDeadlineIters; ++i) {
    const QueryContext* q = QueryContext::Current();
    Status dst = q == nullptr ? Status::OK() : q->Check();
    sink = sink + (dst.ok() ? 1 : 0);
  }
  auto d3 = Clock::now();
  double armed_ns =
      std::chrono::duration<double, std::nano>(d3 - d2).count() / kDeadlineIters;
  double dl_request_us = 64.0 * nodl_ns / 1000.0;
  double dl_pct = 100.0 * dl_request_us / socket_plain;
  std::printf("%-32s %10.2f ns disarmed, %.2f ns armed (disarmed x64 = "
              "%.3f us, %.3f%% of plain socket SELECT) %s\n",
              "deadline_check", nodl_ns, armed_ns, dl_request_us, dl_pct,
              dl_pct < 1.0 ? "[OK <1%]" : "[FAIL >=1%]");
  if (dl_pct >= 1.0) return 1;

  const net::ServerStats& s = d->net_server->stats();
  std::printf("# server: %llu conns, %llu frames in/%llu out, %llu bytes "
              "in/%llu out, %llu protocol errors\n",
              static_cast<unsigned long long>(s.connections_accepted.load()),
              static_cast<unsigned long long>(s.frames_in.load()),
              static_cast<unsigned long long>(s.frames_out.load()),
              static_cast<unsigned long long>(s.bytes_in.load()),
              static_cast<unsigned long long>(s.bytes_out.load()),
              static_cast<unsigned long long>(s.protocol_errors.load()));
  return 0;
}

// ---------------------------------------------------------------------------
// --connscale: does a herd of live-but-idle encrypted connections tax the
// active ones? Sweeps {0, 1000, 2500, 5000} handshaken idle sockets parked on
// the event loop while 4 closed-loop driver clients hammer the same point
// SELECT; reports qps/p50/p99 per herd size and writes BENCH_connscale.json.
// ---------------------------------------------------------------------------

/// Raises RLIMIT_NOFILE to at least `need` fds (both ends of every idle
/// socket live in this process).
bool EnsureFdBudget(rlim_t need) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return false;
  if (rl.rlim_cur >= need) return true;
  rlimit want = rl;
  want.rlim_cur = rl.rlim_max == RLIM_INFINITY
                      ? need
                      : std::min<rlim_t>(need, rl.rlim_max);
  (void)::setrlimit(RLIMIT_NOFILE, &want);
  return ::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur >= need;
}

/// A blocking loopback socket that completes the frame handshake and then
/// goes silent — the server must keep it registered but pay ~nothing for it.
class IdleConn {
 public:
  explicit IdleConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Close();
      return;
    }
    timeval tv{8, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~IdleConn() { Close(); }
  IdleConn(IdleConn&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

  bool ok() const { return fd_ >= 0; }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Handshake() {
    net::HandshakeReq req;
    Bytes frame = net::EncodeFrame(net::MsgType::kHandshake, req.Encode());
    size_t sent = 0;
    while (sent < frame.size()) {
      ssize_t w = ::send(fd_, frame.data() + sent, frame.size() - sent,
                         MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    Bytes header(net::kFrameHeaderSize);
    if (!ReadFull(header.data(), header.size())) return false;
    auto h = net::DecodeFrameHeader(header, net::kDefaultMaxPayload);
    if (!h.ok() || h->type != net::MsgType::kHandshakeAck) return false;
    Bytes payload(h->payload_size);
    return h->payload_size == 0 || ReadFull(payload.data(), payload.size());
  }

 private:
  bool ReadFull(uint8_t* out, size_t n) {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::recv(fd_, out + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
};

struct ScalePoint {
  size_t idle_sockets = 0;
  tpcc::OpenLoopResult r;
  uint64_t live_connections = 0;
  uint64_t epoll_wakeups = 0;
};

int RunConnScale() {
  const std::vector<size_t> herd_sizes = {0, 1000, 2500, 5000};
  size_t max_herd = herd_sizes.back();
  // Client fd + server fd per idle socket, plus drivers/listener/slack.
  if (!EnsureFdBudget(2 * max_herd + 512)) {
    std::fprintf(stderr,
                 "connscale: cannot raise RLIMIT_NOFILE to %zu fds\n",
                 2 * max_herd + 512);
    return 1;
  }

  tpcc::TpccConfig tpcc_config;
  tpcc_config.warehouses = 1;
  tpcc_config.customers_per_district = 30;
  tpcc_config.initial_orders_per_district = 5;

  SystemConfig system;
  system.name = "SQL-AE-DET";
  system.encryption = tpcc::Encryption::kDeterministic;
  system.cache_describe = true;

  auto d = SetUpDeployment(system, tpcc_config, /*network_us=*/0,
                           /*enclave_transition_ns=*/0);
  if (!d) {
    std::fprintf(stderr, "deployment setup failed\n");
    return 1;
  }
  net::ServerConfig net_config;
  net_config.max_connections = max_herd + 64;
  Status st = d->EnableLoopback(net_config);
  if (!st.ok()) {
    std::fprintf(stderr, "loopback start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("# bench_net --connscale: closed-loop qps vs live idle "
              "sockets (4 clients, point SELECT)\n");
  d->driver_deadline_ms = 0;

  std::vector<IdleConn> herd;
  herd.reserve(max_herd);
  std::vector<ScalePoint> points;
  for (size_t target : herd_sizes) {
    while (herd.size() < target) {
      IdleConn c(d->net_server->port());
      if (!c.ok() || !c.Handshake()) {
        std::fprintf(stderr, "connscale: idle socket %zu failed to join\n",
                     herd.size());
        return 1;
      }
      herd.push_back(std::move(c));
    }
    ScalePoint p;
    p.idle_sockets = target;
    p.r = tpcc::RunOpenLoop([&] { return d->MakeDriver(); }, d->config,
                            /*threads=*/4, /*offered_tps=*/1e9,
                            /*seconds=*/1.5);
    net::ServerStatsSnapshot s = d->net_server->SnapshotStats();
    p.live_connections = s.connections_active;
    p.epoll_wakeups = s.epoll_wakeups;
    points.push_back(p);
    std::printf("idle=%5zu live=%5llu  qps=%7.0f  p50=%6.2fms p99=%6.2fms "
                "wrong=%llu\n",
                target, static_cast<unsigned long long>(p.live_connections),
                p.r.goodput_tps, p.r.p50_ms, p.r.p99_ms,
                static_cast<unsigned long long>(p.r.wrong_results));
    if (p.r.completed == 0 || p.r.wrong_results != 0) {
      std::fprintf(stderr, "connscale: bad sweep point\n");
      return 1;
    }
  }

  FILE* f = std::fopen("BENCH_connscale.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"clients\": 4,\n  \"sweep\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
      const ScalePoint& p = points[i];
      std::fprintf(
          f,
          "    {\"idle_sockets\": %zu, \"live_connections\": %llu, "
          "\"qps\": %.1f, \"completed\": %llu, \"p50_ms\": %.2f, "
          "\"p99_ms\": %.2f, \"max_ms\": %.2f, \"wrong_results\": %llu, "
          "\"epoll_wakeups\": %llu}%s\n",
          p.idle_sockets, static_cast<unsigned long long>(p.live_connections),
          p.r.goodput_tps, static_cast<unsigned long long>(p.r.completed),
          p.r.p50_ms, p.r.p99_ms, p.r.max_ms,
          static_cast<unsigned long long>(p.r.wrong_results),
          static_cast<unsigned long long>(p.epoll_wakeups),
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_connscale.json\n");
  }

  // The herd must still be live at the end: nothing was reaped, nothing
  // errored, the event loop carried every socket through the whole sweep.
  net::ServerStatsSnapshot s = d->net_server->SnapshotStats();
  if (s.connections_active < max_herd) {
    std::fprintf(stderr, "connscale: herd shrank (%llu live < %zu)\n",
                 static_cast<unsigned long long>(s.connections_active),
                 max_herd);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aedb::bench

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--connscale") {
    return aedb::bench::RunConnScale();
  }
  return aedb::bench::Run();
}
