// Reproduces paper Figure 8: normalized TPC-C transaction rates for
// SQL-PT, SQL-PT-AEConn and SQL-AE (RND, 4 enclave threads) across client
// driver thread counts. Laptop scale: the absolute tpmC is meaningless; the
// *shape* — PT > PT-AEConn > AE, AEConn paying mostly for the extra
// sp_describe round trip — is the reproduced result.
//
// Flags: --seconds=<per cell> --warehouses=N --threads=a,b,c --network_us=N
//        --batch_size=N (rows per execution morsel; 1 = row-at-a-time)

#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "tpcc_bench_common.h"

namespace aedb::bench {
namespace {

int Main(int argc, char** argv) {
  double seconds = 2.0;
  int warehouses = 4;
  uint32_t network_us = 120;
  uint64_t transition_ns = 3000;
  size_t batch_size = 256;
  std::vector<int> thread_counts = {1, 2, 5, 10, 25, 50, 100};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + strlen(prefix) : nullptr;
    };
    if (const char* v = val("--seconds=")) seconds = atof(v);
    if (const char* v = val("--warehouses=")) warehouses = atoi(v);
    if (const char* v = val("--network_us=")) network_us = atoi(v);
    if (const char* v = val("--batch_size="))
      batch_size = std::max(1, atoi(v));
    if (const char* v = val("--threads=")) {
      thread_counts.clear();
      std::stringstream ss(v);
      std::string tok;
      while (std::getline(ss, tok, ',')) thread_counts.push_back(atoi(tok.c_str()));
    }
  }

  tpcc::TpccConfig config;
  config.warehouses = warehouses;
  config.districts_per_warehouse = 4;
  config.customers_per_district = 30;
  config.items = 100;
  config.initial_orders_per_district = 10;

  SystemConfig systems[] = {
      {"SQL-PT", tpcc::Encryption::kPlaintext, /*ae_connection=*/false, 0, false},
      {"SQL-PT-AEConn", tpcc::Encryption::kPlaintext, true, 0, false},
      {"SQL-AE-RND-4", tpcc::Encryption::kRandomized, true, 4, false},
  };

  std::printf("Figure 8: normalized TPC-C throughput vs client driver threads\n");
  std::printf("(W=%d scaled down; network=%uus/round-trip; enclave "
              "transition=%luns; batch=%zu)\n\n",
              warehouses, network_us, (unsigned long)transition_ns, batch_size);

  // throughput[system][thread_count]
  std::vector<std::vector<double>> tps(3);
  for (int s = 0; s < 3; ++s) {
    auto deployment =
        SetUpDeployment(systems[s], config, network_us, transition_ns, batch_size);
    if (!deployment) return 1;
    for (int threads : thread_counts) {
      auto result = RunConfig(deployment.get(), threads, seconds);
      tps[s].push_back(result.txn_per_second);
      std::fprintf(stderr, "  %-14s %3d threads: %8.1f txn/s (%lu ok, %lu aborted)\n",
                   systems[s].name.c_str(), threads, result.txn_per_second,
                   (unsigned long)result.committed, (unsigned long)result.aborted);
    }
  }

  // Normalize to SQL-PT at the largest thread count (the paper normalizes to
  // the plaintext maximum).
  double base = 0;
  for (double v : tps[0]) base = std::max(base, v);
  std::printf("%-16s", "threads");
  for (int t : thread_counts) std::printf("%8d", t);
  std::printf("\n");
  for (int s = 0; s < 3; ++s) {
    std::printf("%-16s", systems[s].name.c_str());
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      std::printf("%8.2f", tps[s][i] / base);
    }
    std::printf("\n");
  }

  size_t last = thread_counts.size() - 1;
  std::printf("\nAt %d threads: AEConn/PT = %.2f (paper: ~0.64), AE/PT = %.2f "
              "(paper: ~0.5)\n",
              thread_counts[last], tps[1][last] / std::max(1.0, tps[0][last]),
              tps[2][last] / std::max(1.0, tps[0][last]));
  return 0;
}

}  // namespace
}  // namespace aedb::bench

int main(int argc, char** argv) { return aedb::bench::Main(argc, argv); }
