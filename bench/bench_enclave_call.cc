// §4.6 ablation: synchronous enclave calls (one call-gate transition per
// expression) vs the queued worker-thread design with spin-polling, at a
// realistic VBS transition cost — plus the batched call-gate entry points
// (one transition per row-morsel instead of one per row).
//
// Besides the Google Benchmark suite, the binary runs a batch-size sweep at
// transition_cost_ns = 5000 and writes machine-readable results to
// BENCH_batch.json (override with --sweep-json=PATH; --sweep-only skips the
// gbench suite).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "crypto/drbg.h"
#include "enclave/enclave.h"
#include "enclave/worker_pool.h"

namespace aedb::enclave {
namespace {

using types::TypeId;
using types::Value;

struct Rig {
  crypto::RsaPrivateKey author;
  std::unique_ptr<VbsPlatform> platform;
  std::unique_ptr<Enclave> enclave;
  uint64_t handle = 0;
  uint64_t session = 0;
  Bytes cell_a, cell_b;

  explicit Rig(uint64_t transition_ns) {
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("bench")));
    author = crypto::GenerateRsaKey(1024, &drbg);
    platform = std::make_unique<VbsPlatform>("boot");
    EnclaveConfig cfg;
    cfg.transition_cost_ns = transition_ns;
    enclave = std::move(platform->LoadEnclave(
                            EnclaveImage::MakeEsImage(1, author), cfg))
                  .value();
    // Session + CEK install.
    crypto::DhKeyPair dh = crypto::GenerateDhKeyPair(&drbg);
    auto resp = enclave->CreateSession(crypto::DhPublicKeyBytes(dh));
    session = resp->session_id;
    Bytes secret =
        *crypto::DhComputeSharedSecret(dh.private_key, resp->enclave_dh_public);
    crypto::CellCodec channel(secret);
    Bytes cek = crypto::SecureRandom(32);
    Bytes body;
    PutU64(&body, 0);
    PutU32(&body, 1);
    PutU32(&body, 1);
    PutLengthPrefixed(&body, cek);
    (void)enclave->InstallCeks(
        session, 0, channel.Encrypt(body, crypto::EncryptionScheme::kRandomized));
    // Register the standard equality expression.
    es::EsProgram p;
    auto enc = types::EncryptionType::Encrypted(types::EncKind::kRandomized, 1,
                                                true);
    p.GetData(0, TypeId::kString, enc);
    p.GetData(1, TypeId::kString, enc);
    p.Comp(es::CompareOp::kEq);
    p.SetData(0, TypeId::kBool);
    handle = *enclave->RegisterExpression(p.Serialize());
    crypto::CellCodec codec(cek);
    cell_a = codec.Encrypt(Value::String("SMITH").Encode(),
                           crypto::EncryptionScheme::kRandomized);
    cell_b = codec.Encrypt(Value::String("JONES").Encode(),
                           crypto::EncryptionScheme::kRandomized);
  }
};

void BM_SynchronousEval(benchmark::State& state) {
  static Rig* rig = new Rig(static_cast<uint64_t>(state.range(0)));
  std::vector<Value> inputs = {Value::Binary(rig->cell_a),
                               Value::Binary(rig->cell_b)};
  for (auto _ : state) {
    auto r = rig->enclave->EvalRegistered(rig->handle, inputs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("one transition per eval");
}
BENCHMARK(BM_SynchronousEval)->Arg(3000)->Unit(benchmark::kMicrosecond);

void BM_WorkerPoolEval(benchmark::State& state) {
  static Rig* rig = new Rig(3000);
  static EnclaveWorkerPool* pool = [] {
    EnclaveWorkerPool::Options opts;
    opts.num_threads = static_cast<int>(2);
    return new EnclaveWorkerPool(rig->enclave.get(), opts);
  }();
  std::vector<Value> inputs = {Value::Binary(rig->cell_a),
                               Value::Binary(rig->cell_b)};
  for (auto _ : state) {
    auto r = pool->SubmitEval(rig->handle, inputs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("queued; spinning worker amortizes transitions; wakeups=" +
                 std::to_string(pool->wakeups()));
}
BENCHMARK(BM_WorkerPoolEval)->Unit(benchmark::kMicrosecond);

void BM_CompareCells(benchmark::State& state) {
  static Rig* rig = new Rig(0);
  for (auto _ : state) {
    auto r = rig->enclave->CompareCells(1, rig->cell_a, rig->cell_b);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("range-index comparison (decrypt x2 + compare)");
}
BENCHMARK(BM_CompareCells)->Unit(benchmark::kMicrosecond);

void BM_BatchedEval(benchmark::State& state) {
  static Rig* rig = new Rig(3000);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::vector<Value>> batch(
      n, {Value::Binary(rig->cell_a), Value::Binary(rig->cell_b)});
  for (auto _ : state) {
    auto r = rig->enclave->EvalRegisteredBatch(rig->handle, batch);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel("one transition per morsel of " + std::to_string(n));
}
BENCHMARK(BM_BatchedEval)->Arg(1)->Arg(16)->Arg(256)->Unit(
    benchmark::kMicrosecond);

void BM_CompareCellsBatch(benchmark::State& state) {
  static Rig* rig = new Rig(3000);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Slice> cells(n, Slice(rig->cell_b));
  for (auto _ : state) {
    auto r = rig->enclave->CompareCellsBatch(1, rig->cell_a, cells);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel("whole-node probe, one transition");
}
BENCHMARK(BM_CompareCellsBatch)->Arg(1)->Arg(64)->Unit(
    benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Batch-size sweep: rows (or cells) per second at transition_cost_ns = 5000
// for batch sizes 1..256, written to a JSON file. Batch size 1 uses the
// scalar entry points so it is literally the row-at-a-time system.

double EvalRowsPerSec(Rig& rig, size_t batch, size_t total_rows) {
  std::vector<Value> row = {Value::Binary(rig.cell_a),
                            Value::Binary(rig.cell_b)};
  auto start = std::chrono::steady_clock::now();
  size_t done = 0;
  if (batch == 1) {
    for (; done < total_rows; ++done) {
      auto r = rig.enclave->EvalRegistered(rig.handle, row);
      if (!r.ok()) return -1.0;
    }
  } else {
    std::vector<std::vector<Value>> morsel(batch, row);
    while (done < total_rows) {
      auto r = rig.enclave->EvalRegisteredBatch(rig.handle, morsel);
      if (!r.ok()) return -1.0;
      done += batch;
    }
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return secs > 0 ? static_cast<double>(done) / secs : 0.0;
}

double CompareCellsPerSec(Rig& rig, size_t batch, size_t total_cells) {
  auto start = std::chrono::steady_clock::now();
  size_t done = 0;
  if (batch == 1) {
    for (; done < total_cells; ++done) {
      auto r = rig.enclave->CompareCells(1, rig.cell_a, rig.cell_b);
      if (!r.ok()) return -1.0;
    }
  } else {
    std::vector<Slice> cells(batch, Slice(rig.cell_b));
    while (done < total_cells) {
      auto r = rig.enclave->CompareCellsBatch(1, rig.cell_a, cells);
      if (!r.ok()) return -1.0;
      done += batch;
    }
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return secs > 0 ? static_cast<double>(done) / secs : 0.0;
}

int RunBatchSweep(const std::string& json_path) {
  constexpr uint64_t kTransitionNs = 5000;  // acceptance-criteria setting
  constexpr size_t kRowsPerMeasurement = 4096;
  constexpr int kRepeats = 3;  // best-of to shrug off scheduler noise
  const size_t sizes[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

  Rig rig(kTransitionNs);
  // Warm up code paths and caches.
  (void)EvalRowsPerSec(rig, 256, 512);
  (void)CompareCellsPerSec(rig, 64, 512);

  std::printf("\nbatch sweep (transition_cost_ns=%llu, %zu rows/measurement)\n",
              static_cast<unsigned long long>(kTransitionNs),
              kRowsPerMeasurement);
  std::printf("%10s %20s %20s\n", "batch", "eval rows/s", "compare cells/s");

  double eval_rps[sizeof(sizes) / sizeof(sizes[0])] = {};
  double cmp_cps[sizeof(sizes) / sizeof(sizes[0])] = {};
  for (size_t i = 0; i < sizeof(sizes) / sizeof(sizes[0]); ++i) {
    for (int rep = 0; rep < kRepeats; ++rep) {
      double e = EvalRowsPerSec(rig, sizes[i], kRowsPerMeasurement);
      double c = CompareCellsPerSec(rig, sizes[i], kRowsPerMeasurement);
      if (e < 0 || c < 0) {
        std::fprintf(stderr, "sweep failed at batch %zu\n", sizes[i]);
        return 1;
      }
      eval_rps[i] = std::max(eval_rps[i], e);
      cmp_cps[i] = std::max(cmp_cps[i], c);
    }
    std::printf("%10zu %20.0f %20.0f\n", sizes[i], eval_rps[i], cmp_cps[i]);
  }

  const size_t last = sizeof(sizes) / sizeof(sizes[0]) - 1;
  double eval_speedup = eval_rps[last] / std::max(1.0, eval_rps[0]);
  double cmp_speedup = cmp_cps[last] / std::max(1.0, cmp_cps[0]);
  std::printf("speedup at batch %zu vs 1: eval %.2fx, compare %.2fx "
              "(acceptance: >= 3x)\n",
              sizes[last], eval_speedup, cmp_speedup);

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_enclave_call batch sweep\",\n");
  std::fprintf(f, "  \"transition_cost_ns\": %llu,\n",
               static_cast<unsigned long long>(kTransitionNs));
  std::fprintf(f, "  \"rows_per_measurement\": %zu,\n", kRowsPerMeasurement);
  std::fprintf(f, "  \"eval_rows_per_sec\": {");
  for (size_t i = 0; i <= last; ++i)
    std::fprintf(f, "%s\"%zu\": %.1f", i ? ", " : "", sizes[i], eval_rps[i]);
  std::fprintf(f, "},\n  \"compare_cells_per_sec\": {");
  for (size_t i = 0; i <= last; ++i)
    std::fprintf(f, "%s\"%zu\": %.1f", i ? ", " : "", sizes[i], cmp_cps[i]);
  std::fprintf(f, "},\n");
  std::fprintf(f, "  \"eval_speedup_256_vs_1\": %.3f,\n", eval_speedup);
  std::fprintf(f, "  \"compare_speedup_256_vs_1\": %.3f\n}\n", cmp_speedup);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace aedb::enclave

int main(int argc, char** argv) {
  std::string sweep_json = "BENCH_batch.json";
  bool sweep_only = false;
  // Strip our flags before handing argv to Google Benchmark.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--sweep-json=", 0) == 0) {
      sweep_json = arg.substr(13);
    } else if (arg == "--sweep-only") {
      sweep_only = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!sweep_only) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return aedb::enclave::RunBatchSweep(sweep_json);
}
