// §4.6 ablation: synchronous enclave calls (one call-gate transition per
// expression) vs the queued worker-thread design with spin-polling, at a
// realistic VBS transition cost.

#include <benchmark/benchmark.h>

#include "crypto/drbg.h"
#include "enclave/enclave.h"
#include "enclave/worker_pool.h"

namespace aedb::enclave {
namespace {

using types::TypeId;
using types::Value;

struct Rig {
  crypto::RsaPrivateKey author;
  std::unique_ptr<VbsPlatform> platform;
  std::unique_ptr<Enclave> enclave;
  uint64_t handle = 0;
  uint64_t session = 0;
  Bytes cell_a, cell_b;

  explicit Rig(uint64_t transition_ns) {
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("bench")));
    author = crypto::GenerateRsaKey(1024, &drbg);
    platform = std::make_unique<VbsPlatform>("boot");
    EnclaveConfig cfg;
    cfg.transition_cost_ns = transition_ns;
    enclave = std::move(platform->LoadEnclave(
                            EnclaveImage::MakeEsImage(1, author), cfg))
                  .value();
    // Session + CEK install.
    crypto::DhKeyPair dh = crypto::GenerateDhKeyPair(&drbg);
    auto resp = enclave->CreateSession(crypto::DhPublicKeyBytes(dh));
    session = resp->session_id;
    Bytes secret =
        *crypto::DhComputeSharedSecret(dh.private_key, resp->enclave_dh_public);
    crypto::CellCodec channel(secret);
    Bytes cek = crypto::SecureRandom(32);
    Bytes body;
    PutU64(&body, 0);
    PutU32(&body, 1);
    PutU32(&body, 1);
    PutLengthPrefixed(&body, cek);
    (void)enclave->InstallCeks(
        session, 0, channel.Encrypt(body, crypto::EncryptionScheme::kRandomized));
    // Register the standard equality expression.
    es::EsProgram p;
    auto enc = types::EncryptionType::Encrypted(types::EncKind::kRandomized, 1,
                                                true);
    p.GetData(0, TypeId::kString, enc);
    p.GetData(1, TypeId::kString, enc);
    p.Comp(es::CompareOp::kEq);
    p.SetData(0, TypeId::kBool);
    handle = *enclave->RegisterExpression(p.Serialize());
    crypto::CellCodec codec(cek);
    cell_a = codec.Encrypt(Value::String("SMITH").Encode(),
                           crypto::EncryptionScheme::kRandomized);
    cell_b = codec.Encrypt(Value::String("JONES").Encode(),
                           crypto::EncryptionScheme::kRandomized);
  }
};

void BM_SynchronousEval(benchmark::State& state) {
  static Rig* rig = new Rig(static_cast<uint64_t>(state.range(0)));
  std::vector<Value> inputs = {Value::Binary(rig->cell_a),
                               Value::Binary(rig->cell_b)};
  for (auto _ : state) {
    auto r = rig->enclave->EvalRegistered(rig->handle, inputs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("one transition per eval");
}
BENCHMARK(BM_SynchronousEval)->Arg(3000)->Unit(benchmark::kMicrosecond);

void BM_WorkerPoolEval(benchmark::State& state) {
  static Rig* rig = new Rig(3000);
  static EnclaveWorkerPool* pool = [] {
    EnclaveWorkerPool::Options opts;
    opts.num_threads = static_cast<int>(2);
    return new EnclaveWorkerPool(rig->enclave.get(), opts);
  }();
  std::vector<Value> inputs = {Value::Binary(rig->cell_a),
                               Value::Binary(rig->cell_b)};
  for (auto _ : state) {
    auto r = pool->SubmitEval(rig->handle, inputs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("queued; spinning worker amortizes transitions; wakeups=" +
                 std::to_string(pool->wakeups()));
}
BENCHMARK(BM_WorkerPoolEval)->Unit(benchmark::kMicrosecond);

void BM_CompareCells(benchmark::State& state) {
  static Rig* rig = new Rig(0);
  for (auto _ : state) {
    auto r = rig->enclave->CompareCells(1, rig->cell_a, rig->cell_b);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("range-index comparison (decrypt x2 + compare)");
}
BENCHMARK(BM_CompareCells)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aedb::enclave

BENCHMARK_MAIN();
