// Microbenchmarks for the cell-encryption substrate (§2.3 ablation): the
// AEAD_AES_256_CBC_HMAC_SHA_256 codec in both schemes, plus the primitives.

#include <benchmark/benchmark.h>

#include "crypto/cell_codec.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace aedb::crypto {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data = SecureRandom(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(8192);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = SecureRandom(32);
  Bytes data = SecureRandom(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256::Mac(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_Aes256Block(benchmark::State& state) {
  Bytes key = SecureRandom(32);
  Aes256 aes(key);
  uint8_t in[16], out[16];
  SecureRandom(in, 16);
  for (auto _ : state) {
    aes.EncryptBlock(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Aes256Block);

void BM_CellEncrypt(benchmark::State& state) {
  Bytes cek = SecureRandom(32);
  CellCodec codec(cek);
  Bytes plain = SecureRandom(static_cast<size_t>(state.range(0)));
  auto scheme = state.range(1) == 0 ? EncryptionScheme::kDeterministic
                                    : EncryptionScheme::kRandomized;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encrypt(plain, scheme));
  }
  state.SetLabel(EncryptionSchemeName(scheme));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CellEncrypt)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_CellDecrypt(benchmark::State& state) {
  Bytes cek = SecureRandom(32);
  CellCodec codec(cek);
  Bytes cell = codec.Encrypt(SecureRandom(static_cast<size_t>(state.range(0))),
                             EncryptionScheme::kRandomized);
  for (auto _ : state) {
    auto r = codec.Decrypt(cell);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CellDecrypt)->Arg(16)->Arg(256);

}  // namespace
}  // namespace aedb::crypto

BENCHMARK_MAIN();
