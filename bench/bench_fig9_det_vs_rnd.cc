// Reproduces paper Figure 9: normalized TPC-C throughput comparing
// enclave-based processing over RND columns (1 and 4 enclave threads)
// against non-enclave DET processing and the plaintext-with-AE-connection
// baseline, at a fixed client thread count. The paper measured SQL-AE-RND-4
// ~12.3% below SQL-AE-DET.

#include <cstdio>
#include <cstring>

#include "tpcc_bench_common.h"

namespace aedb::bench {
namespace {

int Main(int argc, char** argv) {
  double seconds = 3.0;
  int threads = 16;
  uint32_t network_us = 120;
  uint64_t transition_ns = 3000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + strlen(prefix) : nullptr;
    };
    if (const char* v = val("--seconds=")) seconds = atof(v);
    if (const char* v = val("--threads=")) threads = atoi(v);
    if (const char* v = val("--network_us=")) network_us = atoi(v);
  }

  tpcc::TpccConfig config;
  config.warehouses = 4;
  config.districts_per_warehouse = 4;
  config.customers_per_district = 30;
  config.items = 100;
  config.initial_orders_per_district = 10;

  SystemConfig systems[] = {
      {"SQL-PT-AEConn", tpcc::Encryption::kPlaintext, true, 0, false},
      {"SQL-AE-DET", tpcc::Encryption::kDeterministic, true, 0, false},
      {"SQL-AE-RND-1", tpcc::Encryption::kRandomized, true, 1, false},
      {"SQL-AE-RND-4", tpcc::Encryption::kRandomized, true, 4, false},
  };

  std::printf("Figure 9: enclave (RND) vs deterministic encryption, %d client "
              "threads\n\n", threads);
  double results[4] = {};
  for (int s = 0; s < 4; ++s) {
    auto deployment = SetUpDeployment(systems[s], config, network_us, transition_ns);
    if (!deployment) return 1;
    auto r = RunConfig(deployment.get(), threads, seconds);
    results[s] = r.txn_per_second;
    std::fprintf(stderr, "  %-14s %8.1f txn/s (%lu ok, %lu aborted)\n",
                 systems[s].name.c_str(), r.txn_per_second,
                 (unsigned long)r.committed, (unsigned long)r.aborted);
  }
  double base = results[0];
  std::printf("%-16s %12s %12s\n", "system", "txn/s", "normalized");
  for (int s = 0; s < 4; ++s) {
    std::printf("%-16s %12.1f %12.2f\n", systems[s].name.c_str(), results[s],
                results[s] / base);
  }
  std::printf("\nRND-4 vs DET: %.1f%% slower (paper: 12.3%%)\n",
              100.0 * (1.0 - results[3] / std::max(1.0, results[1])));
  return 0;
}

}  // namespace
}  // namespace aedb::bench

int main(int argc, char** argv) { return aedb::bench::Main(argc, argv); }
