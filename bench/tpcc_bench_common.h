#ifndef AEDB_BENCH_TPCC_BENCH_COMMON_H_
#define AEDB_BENCH_TPCC_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "crypto/drbg.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "tpcc/tpcc.h"

namespace aedb::bench {

/// One fully provisioned AE deployment (vault, HGS, enclave, server) with a
/// loaded TPC-C database, plus a driver factory for terminal threads.
struct TpccDeployment {
  std::unique_ptr<keys::InMemoryKeyVault> vault;
  keys::KeyProviderRegistry registry;
  crypto::RsaPrivateKey author_key;
  enclave::EnclaveImage image;
  std::unique_ptr<attestation::HostGuardianService> hgs;
  std::unique_ptr<server::Database> db;
  tpcc::TpccConfig config;
  bool ae_connection = true;
  bool cache_describe = true;
  /// Loopback mode: terminals connect through the wire protocol against a
  /// net::Server fronting `db` instead of calling it in-process.
  std::unique_ptr<net::Server> net_server;
  bool loopback = false;
  /// Per-query end-to-end budget stamped into every driver MakeDriver()
  /// produces (0 = none). Overload benches set this to bound p99.
  uint32_t driver_deadline_ms = 0;

  ~TpccDeployment() {
    if (net_server) net_server->Stop();
  }

  std::unique_ptr<client::Driver> MakeDriver() {
    client::DriverOptions opts;
    opts.column_encryption_enabled = ae_connection;
    opts.cache_describe_results = cache_describe;
    opts.enclave_policy.trusted_author_id = image.AuthorId();
    opts.deadline_ms = driver_deadline_ms;
    if (loopback && net_server) {
      net::SocketTransport::Options topts;
      topts.port = net_server->port();
      auto transport = net::SocketTransport::Connect(topts);
      if (!transport.ok()) {
        std::fprintf(stderr, "loopback connect failed: %s\n",
                     transport.status().ToString().c_str());
        return nullptr;
      }
      return std::make_unique<client::Driver>(std::move(transport).value(),
                                              &registry, hgs->signing_public(),
                                              opts);
    }
    return std::make_unique<client::Driver>(db.get(), &registry,
                                            hgs->signing_public(), opts);
  }

  /// Starts the TCP front end and routes future MakeDriver() calls over it.
  /// Pass a config to exercise the overload knobs (max_connections etc.).
  Status EnableLoopback(net::ServerConfig config_net = {}) {
    net_server = std::make_unique<net::Server>(db.get(), config_net);
    AEDB_RETURN_IF_ERROR(net_server->Start());
    loopback = true;
    return Status::OK();
  }
};

/// The benchmark's system configurations (paper §5.2).
struct SystemConfig {
  std::string name;
  tpcc::Encryption encryption = tpcc::Encryption::kPlaintext;
  bool ae_connection = true;
  /// 0 = synchronous enclave calls; N = worker threads (SQL-AE-RND-N).
  int enclave_threads = 0;
  /// Drivers cache describe results (the paper suggests this optimization;
  /// the measured configurations do NOT cache — §5.4.1).
  bool cache_describe = false;
};

inline std::unique_ptr<TpccDeployment> SetUpDeployment(
    const SystemConfig& system, const tpcc::TpccConfig& tpcc_config,
    uint32_t network_us, uint64_t enclave_transition_ns,
    size_t eval_batch_size = 256,
    const std::function<void(server::ServerOptions*)>& tune = nullptr) {
  auto d = std::make_unique<TpccDeployment>();
  d->config = tpcc_config;
  d->config.encryption = system.encryption;
  d->ae_connection = system.ae_connection;
  d->cache_describe = system.cache_describe;

  d->vault = std::make_unique<keys::InMemoryKeyVault>();
  if (!d->vault->CreateKey("kv/tpcc", 1024).ok()) return nullptr;
  if (!d->registry.Register(d->vault.get()).ok()) return nullptr;
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("bench-author")));
  d->author_key = crypto::GenerateRsaKey(1024, &drbg);
  d->image = enclave::EnclaveImage::MakeEsImage(1, d->author_key);
  d->hgs = std::make_unique<attestation::HostGuardianService>();

  server::ServerOptions opts;
  opts.enclave_worker_threads = system.enclave_threads;
  opts.enclave_config.transition_cost_ns = enclave_transition_ns;
  opts.simulated_network_us = network_us;
  // Short lock timeout: contention resolves as quick aborts instead of
  // multi-second stalls (laptop-scale W makes district rows hot).
  opts.engine.lock_timeout = std::chrono::milliseconds(100);
  opts.enclave_worker_spin_us = 2;  // single-core host: spinning steals cycles
  opts.eval_batch_size = eval_batch_size;  // 1 = row-at-a-time enclave calls
  if (tune) tune(&opts);  // overload benches set gates/queue depths here
  d->db = std::make_unique<server::Database>(opts, d->hgs.get(), &d->image);
  d->hgs->RegisterTcgLog(d->db->platform()->tcg_log());

  auto loader_driver = d->MakeDriver();
  if (system.encryption != tpcc::Encryption::kPlaintext) {
    bool enclave = system.encryption == tpcc::Encryption::kRandomized;
    if (!loader_driver
             ->ProvisionCmk("TpccCMK", d->vault->name(), "kv/tpcc", enclave)
             .ok()) {
      return nullptr;
    }
    if (!loader_driver->ProvisionCek("TpccCEK", "TpccCMK").ok()) return nullptr;
  }
  tpcc::TpccLoader loader(loader_driver.get(), d->config);
  Status st = loader.CreateSchema();
  if (st.ok()) st = loader.Load();
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return nullptr;
  }
  return d;
}

inline tpcc::BenchcraftResult RunConfig(TpccDeployment* d, int threads,
                                        double seconds) {
  return tpcc::RunBenchcraft([d] { return d->MakeDriver(); }, d->config,
                             threads, seconds);
}

}  // namespace aedb::bench

#endif  // AEDB_BENCH_TPCC_BENCH_COMMON_H_
