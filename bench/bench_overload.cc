// Graceful degradation under overload: open-loop point-SELECT load swept
// from below capacity to far above it, against a server with an admission
// gate, a bounded enclave queue and a connection cap.
//
// The contract being measured (the robustness PR's acceptance bar):
//   - goodput plateaus near capacity instead of collapsing as offered load
//     grows (the admission gate sheds excess work before it costs anything),
//   - p99 latency of *completed* queries stays bounded by the client deadline,
//   - every shed query carries a typed kOverloaded / kDeadlineExceeded,
//   - zero wrong results: each response self-validates (C_ID echo plus the
//     encrypted C_LAST decrypting to the loader's value).
//
// Emits BENCH_overload.json next to the working directory for the roadmap's
// recorded-artifacts convention.

#include <cstdio>
#include <string>
#include <vector>

#include "tpcc_bench_common.h"

namespace aedb::bench {
namespace {

struct SweepPoint {
  double multiplier = 0;
  double offered_tps = 0;
  tpcc::OpenLoopResult r;
};

int Run() {
  tpcc::TpccConfig tpcc_config;
  tpcc_config.warehouses = 1;
  tpcc_config.customers_per_district = 30;
  tpcc_config.initial_orders_per_district = 5;

  SystemConfig system;
  system.name = "SQL-AE-DET";
  system.encryption = tpcc::Encryption::kDeterministic;
  system.cache_describe = true;

  auto d = SetUpDeployment(system, tpcc_config, /*network_us=*/0,
                           /*enclave_transition_ns=*/0,
                           /*eval_batch_size=*/256,
                           [](server::ServerOptions* opts) {
                             // Gate well below the sweep's 16 issuers so the
                             // admission path actually sheds under overload.
                             opts->max_inflight_queries = 4;
                             opts->enclave_queue_depth = 64;
                             opts->overload_retry_after_ms = 5;
                           });
  if (!d) {
    std::fprintf(stderr, "deployment setup failed\n");
    return 1;
  }
  net::ServerConfig net_config;
  net_config.max_connections = 64;  // above the sweep's thread count
  Status st = d->EnableLoopback(net_config);
  if (!st.ok()) {
    std::fprintf(stderr, "loopback start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Capacity probe: one closed-loop client issuing the same point SELECT as
  // fast as it can. Its rate is the "single-client saturation" baseline the
  // goodput floor is expressed against.
  d->driver_deadline_ms = 0;
  auto probe = tpcc::RunOpenLoop([&] { return d->MakeDriver(); }, d->config,
                                 /*threads=*/1, /*offered_tps=*/1e9,
                                 /*seconds=*/1.0);
  double capacity = probe.goodput_tps;
  if (capacity <= 0) {
    std::fprintf(stderr, "capacity probe produced no completions\n");
    return 1;
  }
  std::printf("# bench_overload: capacity probe %.0f qps (1 closed client)\n",
              capacity);

  // The sweep proper: fixed 250 ms per-query budget, offered load at
  // {1,2,4,8}x the probed capacity from 16 open-loop issuers (4x the
  // admission gate, so excess concurrency hits the shed path).
  d->driver_deadline_ms = 250;
  const double multipliers[] = {1.0, 2.0, 4.0, 8.0};
  std::vector<SweepPoint> points;
  for (double m : multipliers) {
    SweepPoint p;
    p.multiplier = m;
    p.offered_tps = capacity * m;
    p.r = tpcc::RunOpenLoop([&] { return d->MakeDriver(); }, d->config,
                            /*threads=*/16, p.offered_tps, /*seconds=*/2.0);
    points.push_back(p);
    std::printf(
        "%4.0fx offered=%7.0f goodput=%7.0f qps  p50=%6.1fms p99=%6.1fms  "
        "shed(over=%llu dead=%llu other=%llu) wrong=%llu\n",
        m, p.offered_tps, p.r.goodput_tps, p.r.p50_ms, p.r.p99_ms,
        static_cast<unsigned long long>(p.r.shed_overloaded),
        static_cast<unsigned long long>(p.r.shed_deadline),
        static_cast<unsigned long long>(p.r.other_errors),
        static_cast<unsigned long long>(p.r.wrong_results));
  }

  // JSON artifact.
  FILE* f = std::fopen("BENCH_overload.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"capacity_probe_qps\": %.1f,\n  \"deadline_ms\": 250,\n"
                 "  \"sweep\": [\n", capacity);
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      std::fprintf(
          f,
          "    {\"multiplier\": %.1f, \"offered_qps\": %.1f, "
          "\"goodput_qps\": %.1f, \"completed\": %llu, \"offered\": %llu, "
          "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"max_ms\": %.2f, "
          "\"shed_overloaded\": %llu, \"shed_deadline\": %llu, "
          "\"other_errors\": %llu, \"wrong_results\": %llu}%s\n",
          p.multiplier, p.offered_tps, p.r.goodput_tps,
          static_cast<unsigned long long>(p.r.completed),
          static_cast<unsigned long long>(p.r.offered), p.r.p50_ms, p.r.p99_ms,
          p.r.max_ms, static_cast<unsigned long long>(p.r.shed_overloaded),
          static_cast<unsigned long long>(p.r.shed_deadline),
          static_cast<unsigned long long>(p.r.other_errors),
          static_cast<unsigned long long>(p.r.wrong_results),
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_overload.json\n");
  }

  // Gate on the acceptance criteria at the 4x point.
  const SweepPoint& heavy = points[2];
  bool ok = true;
  if (heavy.r.wrong_results != 0) {
    std::fprintf(stderr, "FAIL: %llu wrong results under 4x overload\n",
                 static_cast<unsigned long long>(heavy.r.wrong_results));
    ok = false;
  }
  if (heavy.r.other_errors != 0) {
    std::fprintf(stderr, "FAIL: %llu untyped errors under 4x overload\n",
                 static_cast<unsigned long long>(heavy.r.other_errors));
    ok = false;
  }
  if (heavy.r.goodput_tps < 0.7 * capacity) {
    std::fprintf(stderr, "FAIL: 4x goodput %.0f < 70%% of capacity %.0f\n",
                 heavy.r.goodput_tps, capacity);
    ok = false;
  }
  const net::ServerStats& s = d->net_server->stats();
  std::printf(
      "# server: admitted=%llu rejected=%llu expired=%llu queue_hw=%llu "
      "lock_waits_expired=%llu conns_rejected=%llu\n",
      static_cast<unsigned long long>(s.queries_admitted.load()),
      static_cast<unsigned long long>(s.queries_rejected.load()),
      static_cast<unsigned long long>(s.queries_expired.load()),
      static_cast<unsigned long long>(s.queue_depth_highwater.load()),
      static_cast<unsigned long long>(s.lock_waits_expired.load()),
      static_cast<unsigned long long>(s.connections_rejected.load()));
  std::printf(ok ? "# PASS: graceful degradation held at 4x\n"
                 : "# FAIL: see above\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace aedb::bench

int main() { return aedb::bench::Run(); }
