// Shard-scaling benchmark: TPC-C over the warehouse-partitioned router at
// 1/2/4 shards, sweeping the cross-shard (remote New-Order/Payment) fraction.
// Each cell runs the closed-loop benchcraft mix in-process against a
// ShardedDatabase, then cross-checks the router's view of the final state
// against the per-shard engines directly (wrong_results must stay 0).
// Emits BENCH_shard.json.
//
// On multi-core hosts the 1->4 shard curve at remote_pct=0 shows the
// shared-nothing scaling claim; on a single core the win is confined to
// reduced lock contention (hot district rows split across engines), so the
// JSON records the core count alongside each cell.
//
// Flags: --seconds=<per cell> --threads=N --shards=a,b,c --remote=a,b,c

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crypto/drbg.h"
#include "server/router.h"
#include "tpcc/tpcc.h"

namespace aedb::bench {
namespace {

/// One fully provisioned sharded deployment with TPC-C loaded.
struct ShardedDeployment {
  std::unique_ptr<keys::InMemoryKeyVault> vault;
  keys::KeyProviderRegistry registry;
  crypto::RsaPrivateKey author_key;
  enclave::EnclaveImage image;
  std::unique_ptr<attestation::HostGuardianService> hgs;
  std::unique_ptr<server::ShardedDatabase> db;

  std::unique_ptr<client::Driver> MakeDriver() {
    client::DriverOptions opts;
    opts.enclave_policy.trusted_author_id = image.AuthorId();
    return std::make_unique<client::Driver>(db.get(), &registry,
                                            hgs->signing_public(), opts);
  }
};

std::unique_ptr<ShardedDeployment> SetUp(uint32_t shards,
                                         const tpcc::TpccConfig& config) {
  auto d = std::make_unique<ShardedDeployment>();
  d->vault = std::make_unique<keys::InMemoryKeyVault>();
  if (!d->vault->CreateKey("kv/shard-bench", 1024).ok()) return nullptr;
  if (!d->registry.Register(d->vault.get()).ok()) return nullptr;
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("shard-bench-author")));
  d->author_key = crypto::GenerateRsaKey(1024, &drbg);
  d->image = enclave::EnclaveImage::MakeEsImage(1, d->author_key);
  d->hgs = std::make_unique<attestation::HostGuardianService>();

  server::ShardedOptions opts;
  opts.shards = shards;
  // Short lock timeout: contention resolves as quick aborts instead of
  // multi-second stalls (laptop-scale W makes district rows hot).
  opts.base.engine.lock_timeout = std::chrono::milliseconds(100);
  d->db = std::make_unique<server::ShardedDatabase>(std::move(opts),
                                                    d->hgs.get(), &d->image);
  for (uint32_t i = 0; i < d->db->shard_count(); ++i) {
    d->hgs->RegisterTcgLog(d->db->shard(i)->platform()->tcg_log());
  }
  if (!d->db->Open().ok()) return nullptr;

  auto loader_driver = d->MakeDriver();
  tpcc::TpccLoader loader(loader_driver.get(), config);
  Status st = loader.CreateSchema();
  if (!st.ok()) {
    std::fprintf(stderr, "schema: %s\n", st.ToString().c_str());
    return nullptr;
  }
  st = loader.Load();
  if (!st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return nullptr;
  }
  return d;
}

/// Cross-checks the router's aggregate view against the shard engines
/// directly; any mismatch is a wrong result (a 2PC atomicity or routing bug).
uint64_t CountWrongResults(ShardedDeployment* d) {
  auto driver = d->MakeDriver();
  uint64_t wrong = 0;
  const char* queries[] = {
      "SELECT COUNT(*) FROM Orders", "SELECT COUNT(*) FROM OrderLine",
      "SELECT COUNT(*) FROM NewOrder", "SELECT COUNT(*) FROM History"};
  for (const char* q : queries) {
    auto routed = driver->Query(q);
    if (!routed.ok() || routed->rows.empty()) {
      std::fprintf(stderr, "verify %s: %s\n", q,
                   routed.status().ToString().c_str());
      ++wrong;
      continue;
    }
    int64_t direct_sum = 0;
    bool direct_ok = true;
    for (uint32_t s = 0; s < d->db->shard_count(); ++s) {
      auto r = d->db->shard(s)->Execute(q, {});
      if (!r.ok() || r->rows.empty()) {
        direct_ok = false;
        break;
      }
      direct_sum += r->rows[0][0].i64();
    }
    if (!direct_ok || routed->rows[0][0].i64() != direct_sum) ++wrong;
  }
  return wrong;
}

struct Cell {
  uint32_t shards = 0;
  int remote_pct = 0;
  tpcc::BenchcraftResult result;
  uint64_t two_phase_commits = 0;
  uint64_t wrong_results = 0;
};

int Main(int argc, char** argv) {
  double seconds = 2.0;
  int threads = 4;
  std::vector<uint32_t> shard_counts = {1, 2, 4};
  std::vector<int> remote_pcts = {0, 10, 25};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + strlen(prefix) : nullptr;
    };
    if (const char* v = val("--seconds=")) seconds = atof(v);
    if (const char* v = val("--threads=")) threads = std::max(1, atoi(v));
    if (const char* v = val("--shards=")) {
      shard_counts.clear();
      std::stringstream ss(v);
      std::string tok;
      while (std::getline(ss, tok, ','))
        shard_counts.push_back(static_cast<uint32_t>(atoi(tok.c_str())));
    }
    if (const char* v = val("--remote=")) {
      remote_pcts.clear();
      std::stringstream ss(v);
      std::string tok;
      while (std::getline(ss, tok, ',')) remote_pcts.push_back(atoi(tok.c_str()));
    }
  }

  tpcc::TpccConfig config;
  config.warehouses = 4;  // fixed data size; only the shard count varies
  config.districts_per_warehouse = 4;
  config.customers_per_district = 30;
  config.items = 100;
  config.initial_orders_per_district = 10;
  config.encryption = tpcc::Encryption::kPlaintext;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("# shard scaling: W=%d, %d terminals, %.1fs/cell, %u cores\n",
              config.warehouses, threads, seconds, cores);
  std::printf("%-7s %-10s %10s %10s %10s %8s %6s\n", "shards", "remote_pct",
              "txn/s", "committed", "aborted", "2pc", "wrong");

  std::vector<Cell> cells;
  bool failed = false;
  for (uint32_t shards : shard_counts) {
    for (int remote : remote_pcts) {
      tpcc::TpccConfig cell_config = config;
      cell_config.remote_pct = remote;
      auto d = SetUp(shards, cell_config);
      if (!d) return 1;
      Cell cell;
      cell.shards = shards;
      cell.remote_pct = remote;
      cell.result = tpcc::RunBenchcraft([&] { return d->MakeDriver(); },
                                        cell_config, threads, seconds);
      cell.two_phase_commits = d->db->two_phase_commits();
      cell.wrong_results = CountWrongResults(d.get());
      if (!cell.result.first_error.empty()) {
        std::fprintf(stderr, "cell shards=%u remote=%d: %s\n", shards, remote,
                     cell.result.first_error.c_str());
        failed = true;
      }
      if (cell.wrong_results != 0) failed = true;
      std::printf("%-7u %-10d %10.1f %10llu %10llu %8llu %6llu\n", shards,
                  remote, cell.result.txn_per_second,
                  (unsigned long long)cell.result.committed,
                  (unsigned long long)cell.result.aborted,
                  (unsigned long long)cell.two_phase_commits,
                  (unsigned long long)cell.wrong_results);
      cells.push_back(std::move(cell));
    }
  }

  FILE* f = std::fopen("BENCH_shard.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"warehouses\": %d,\n  \"threads\": %d,\n"
                 "  \"seconds_per_cell\": %.2f,\n  \"cores\": %u,\n"
                 "  \"cells\": [\n",
                 config.warehouses, threads, seconds, cores);
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"shards\": %u, \"remote_pct\": %d, "
                   "\"txn_per_second\": %.2f, \"committed\": %llu, "
                   "\"aborted\": %llu, \"two_phase_commits\": %llu, "
                   "\"wrong_results\": %llu}%s\n",
                   c.shards, c.remote_pct, c.result.txn_per_second,
                   (unsigned long long)c.result.committed,
                   (unsigned long long)c.result.aborted,
                   (unsigned long long)c.two_phase_commits,
                   (unsigned long long)c.wrong_results,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_shard.json\n");
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace aedb::bench

int main(int argc, char** argv) { return aedb::bench::Main(argc, argv); }
