// §3.1 ablation: B+-tree cost with plaintext ordering vs DET ciphertext
// ordering vs enclave-routed comparisons on RND ciphertext. Reports both
// time and comparator invocations (each an enclave call for RND).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "crypto/drbg.h"
#include "enclave/enclave.h"
#include "storage/btree.h"
#include "types/value.h"

namespace aedb::storage {
namespace {

using types::Value;

class PlainValueComparator : public Comparator {
 public:
  Result<int> Compare(Slice a, Slice b) const override {
    size_t off = 0;
    Value va, vb;
    AEDB_ASSIGN_OR_RETURN(va, Value::Decode(a, &off));
    off = 0;
    AEDB_ASSIGN_OR_RETURN(vb, Value::Decode(b, &off));
    return va.Compare(vb);
  }
  const char* Name() const override { return "plain"; }
};

class EnclaveRoutedComparator : public Comparator {
 public:
  EnclaveRoutedComparator(enclave::Enclave* enclave, uint32_t cek)
      : enclave_(enclave), cek_(cek) {}
  Result<int> Compare(Slice a, Slice b) const override {
    return enclave_->CompareCells(cek_, a, b);
  }
  const char* Name() const override { return "enclave"; }

 private:
  enclave::Enclave* enclave_;
  uint32_t cek_;
};

struct EnclaveRig {
  crypto::RsaPrivateKey author;
  std::unique_ptr<enclave::VbsPlatform> platform;
  std::unique_ptr<enclave::Enclave> enclave;
  Bytes cek = crypto::SecureRandom(32);

  EnclaveRig() {
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("idx-bench")));
    author = crypto::GenerateRsaKey(1024, &drbg);
    platform = std::make_unique<enclave::VbsPlatform>("boot");
    enclave = std::move(platform->LoadEnclave(
                            enclave::EnclaveImage::MakeEsImage(1, author),
                            enclave::EnclaveConfig{}))
                  .value();
    crypto::DhKeyPair dh = crypto::GenerateDhKeyPair(&drbg);
    auto resp = enclave->CreateSession(crypto::DhPublicKeyBytes(dh));
    Bytes secret =
        *crypto::DhComputeSharedSecret(dh.private_key, resp->enclave_dh_public);
    crypto::CellCodec channel(secret);
    Bytes body;
    PutU64(&body, 0);
    PutU32(&body, 1);
    PutU32(&body, 1);
    PutLengthPrefixed(&body, cek);
    (void)enclave->InstallCeks(
        resp->session_id, 0,
        channel.Encrypt(body, crypto::EncryptionScheme::kRandomized));
  }
};

EnclaveRig& Rig() {
  static EnclaveRig* rig = new EnclaveRig();
  return *rig;
}

enum class KeyMode { kPlain, kDet, kRndEnclave };

Bytes MakeKey(KeyMode mode, int64_t v) {
  Value value = Value::Int64(v);
  switch (mode) {
    case KeyMode::kPlain:
      return value.Encode();
    case KeyMode::kDet: {
      static crypto::CellCodec* codec = new crypto::CellCodec(Rig().cek);
      return codec->Encrypt(value.Encode(),
                            crypto::EncryptionScheme::kDeterministic);
    }
    case KeyMode::kRndEnclave: {
      static crypto::CellCodec* codec = new crypto::CellCodec(Rig().cek);
      return codec->Encrypt(value.Encode(),
                            crypto::EncryptionScheme::kRandomized);
    }
  }
  return {};
}

std::unique_ptr<Comparator> MakeComparator(KeyMode mode) {
  switch (mode) {
    case KeyMode::kPlain:
      return std::make_unique<PlainValueComparator>();
    case KeyMode::kDet:
      return std::make_unique<BinaryComparator>();
    case KeyMode::kRndEnclave:
      return std::make_unique<EnclaveRoutedComparator>(Rig().enclave.get(), 1);
  }
  return nullptr;
}

const char* ModeName(KeyMode m) {
  switch (m) {
    case KeyMode::kPlain: return "plaintext-range";
    case KeyMode::kDet: return "DET-equality(ciphertext order)";
    case KeyMode::kRndEnclave: return "RND-range(enclave order)";
  }
  return "?";
}

void BM_IndexBuild(benchmark::State& state) {
  KeyMode mode = static_cast<KeyMode>(state.range(0));
  int n = static_cast<int>(state.range(1));
  std::vector<Bytes> keys;
  aedb::Xoshiro256 rng(7);
  for (int i = 0; i < n; ++i) keys.push_back(MakeKey(mode, rng.Uniform(0, 1 << 20)));
  uint64_t comparisons = 0;
  for (auto _ : state) {
    auto cmp = MakeComparator(mode);
    BTree tree(cmp.get(), false);
    for (int i = 0; i < n; ++i) {
      auto r = tree.Insert(keys[i], Rid{0, static_cast<uint16_t>(i)});
      benchmark::DoNotOptimize(r);
    }
    comparisons = tree.comparisons();
  }
  state.SetLabel(std::string(ModeName(mode)) + ", " +
                 std::to_string(comparisons) + " comparisons/build");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IndexBuild)
    ->Args({0, 2000})
    ->Args({1, 2000})
    ->Args({2, 2000})
    ->Unit(benchmark::kMillisecond);

void BM_IndexSeek(benchmark::State& state) {
  KeyMode mode = static_cast<KeyMode>(state.range(0));
  int n = 4000;
  auto cmp = MakeComparator(mode);
  BTree tree(cmp.get(), false);
  aedb::Xoshiro256 rng(7);
  std::vector<Bytes> keys;
  for (int i = 0; i < n; ++i) {
    keys.push_back(MakeKey(mode, i));
    (void)tree.Insert(keys.back(), Rid{0, static_cast<uint16_t>(i % 1000)});
  }
  uint64_t before = tree.comparisons();
  uint64_t seeks = 0;
  for (auto _ : state) {
    auto r = tree.SeekEqual(keys[rng.Uniform(0, n - 1)]);
    benchmark::DoNotOptimize(r);
    ++seeks;
  }
  state.SetLabel(std::string(ModeName(mode)) + ", " +
                 std::to_string((tree.comparisons() - before) / seeks) +
                 " comparisons/seek");
}
BENCHMARK(BM_IndexSeek)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aedb::storage

BENCHMARK_MAIN();
