// §2.4.2 ablation: online initial encryption / key rotation through the
// enclave vs the client-side round-trip tool (the v1 pain point: "latencies
// as long as a week" at terabyte scale — here the crossover shows in the
// per-row cost).

#include <chrono>
#include <cstdio>
#include <memory>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "server/database.h"

namespace aedb::bench {
namespace {

using types::Value;

struct Deployment {
  std::unique_ptr<keys::InMemoryKeyVault> vault;
  keys::KeyProviderRegistry registry;
  crypto::RsaPrivateKey author;
  enclave::EnclaveImage image;
  std::unique_ptr<attestation::HostGuardianService> hgs;
  std::unique_ptr<server::Database> db;
  std::unique_ptr<client::Driver> driver;
};

std::unique_ptr<Deployment> SetUp(uint32_t network_us) {
  auto d = std::make_unique<Deployment>();
  d->vault = std::make_unique<keys::InMemoryKeyVault>();
  (void)d->vault->CreateKey("kv/hot", 1024);
  (void)d->vault->CreateKey("kv/cold", 1024);
  (void)d->registry.Register(d->vault.get());
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("rot-bench")));
  d->author = crypto::GenerateRsaKey(1024, &drbg);
  d->image = enclave::EnclaveImage::MakeEsImage(1, d->author);
  d->hgs = std::make_unique<attestation::HostGuardianService>();
  server::ServerOptions opts;
  opts.simulated_network_us = network_us;
  d->db = std::make_unique<server::Database>(opts, d->hgs.get(), &d->image);
  d->hgs->RegisterTcgLog(d->db->platform()->tcg_log());
  client::DriverOptions dopts;
  dopts.enclave_policy.trusted_author_id = d->image.AuthorId();
  d->driver = std::make_unique<client::Driver>(d->db.get(), &d->registry,
                                               d->hgs->signing_public(), dopts);
  return d;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

int Main() {
  // Network latency makes the client round trip hurt, as in production.
  const uint32_t kNetworkUs = 200;
  std::printf("Initial-encryption paths: enclave in-place vs client round "
              "trip (network=%uus/round-trip)\n\n", kNetworkUs);
  std::printf("%8s %22s %22s\n", "rows", "enclave DDL (ms)", "client tool (ms)");
  for (int rows : {100, 400, 1600}) {
    double enclave_ms = 0, client_ms = 0;
    {
      auto d = SetUp(kNetworkUs);
      (void)d->driver->ProvisionCmk("HotCMK", d->vault->name(), "kv/hot", true);
      (void)d->driver->ProvisionCek("HotCEK", "HotCMK");
      (void)d->driver->ExecuteDdl("CREATE TABLE T (Id INT, Ssn VARCHAR(16))");
      uint64_t txn = d->driver->Begin();
      for (int i = 0; i < rows; ++i) {
        (void)d->driver->Query("INSERT INTO T (Id, Ssn) VALUES (@i, @s)",
                               {{"i", Value::Int32(i)},
                                {"s", Value::String("ssn-" + std::to_string(i))}},
                               txn);
      }
      (void)d->driver->Commit(txn);
      auto start = std::chrono::steady_clock::now();
      Status st = d->driver->ExecuteEnclaveDdl(
          "ALTER TABLE T ALTER COLUMN Ssn VARCHAR(16) ENCRYPTED WITH ("
          "COLUMN_ENCRYPTION_KEY = HotCEK, ENCRYPTION_TYPE = Randomized, "
          "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')");
      enclave_ms = Seconds(start) * 1000;
      if (!st.ok()) std::fprintf(stderr, "enclave DDL: %s\n", st.ToString().c_str());
    }
    {
      auto d = SetUp(kNetworkUs);
      (void)d->driver->ProvisionCmk("ColdCMK", d->vault->name(), "kv/cold",
                                    false);
      (void)d->driver->ProvisionCek("ColdCEK", "ColdCMK");
      (void)d->driver->ExecuteDdl("CREATE TABLE T (Id INT, Ssn VARCHAR(16))");
      uint64_t txn = d->driver->Begin();
      for (int i = 0; i < rows; ++i) {
        (void)d->driver->Query("INSERT INTO T (Id, Ssn) VALUES (@i, @s)",
                               {{"i", Value::Int32(i)},
                                {"s", Value::String("ssn-" + std::to_string(i))}},
                               txn);
      }
      (void)d->driver->Commit(txn);
      auto start = std::chrono::steady_clock::now();
      Status st = d->driver->ClientSideEncryptColumn(
          "T", "Ssn", "ColdCEK", types::EncKind::kDeterministic, "Id");
      client_ms = Seconds(start) * 1000;
      if (!st.ok()) std::fprintf(stderr, "client tool: %s\n", st.ToString().c_str());
    }
    std::printf("%8d %22.1f %22.1f\n", rows, enclave_ms, client_ms);
  }
  std::printf("\nThe in-place path avoids one network round trip per row; the "
              "gap widens linearly with table size (the paper's week-long "
              "terabyte round trip).\n");
  return 0;
}

}  // namespace
}  // namespace aedb::bench

int main() { return aedb::bench::Main(); }
