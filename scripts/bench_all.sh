#!/usr/bin/env bash
# Regenerates every recorded BENCH_*.json artifact from the current tree and
# validates the results: each file must exist, parse as JSON, and (where the
# bench defines one) satisfy its correctness gate — the benches themselves
# exit non-zero on wrong results, shed-query typing violations, shrunk
# connection herds, or a failed recovery verify.
#
#   scripts/bench_all.sh            # build + run all JSON-emitting benches
#   scripts/bench_all.sh --quick    # shorter measurement windows (smoke run;
#                                   # artifact shapes only, numbers noisy)
#
# Artifacts (written to the repo root, the roadmap's recorded-artifacts
# convention):
#   BENCH_batch.json      bench_enclave_call --sweep-only   (morsel sweep)
#   BENCH_connscale.json  bench_net --connscale             (socket scale)
#   BENCH_overload.json   bench_overload                    (degradation)
#   BENCH_recovery.json   bench_recovery                    (+BENCH_commit)
#   BENCH_shard.json      bench_shard                       (2PC scaling)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run() { echo "==> $*"; "$@"; }

run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build -j "$JOBS" --target \
    bench_enclave_call bench_net bench_overload bench_recovery bench_shard

run ./build/bench/bench_enclave_call --sweep-only
run ./build/bench/bench_net --connscale
run ./build/bench/bench_overload
run ./build/bench/bench_recovery
if [[ "$QUICK" == "1" ]]; then
  run ./build/bench/bench_shard --seconds=1.0
else
  run ./build/bench/bench_shard
fi

# Every artifact must exist and parse; bench_shard's cells must additionally
# report zero wrong results (also enforced by its exit code — double-checked
# here so a hand-edited artifact can't slip through review).
for j in BENCH_batch.json BENCH_connscale.json BENCH_overload.json \
         BENCH_recovery.json BENCH_commit.json BENCH_shard.json; do
  [[ -s "$j" ]] || { echo "bench_all: missing $j" >&2; exit 1; }
  python3 -m json.tool "$j" > /dev/null \
      || { echo "bench_all: $j is not valid JSON" >&2; exit 1; }
done
python3 - <<'EOF'
import json, sys
cells = json.load(open("BENCH_shard.json"))["cells"]
bad = [c for c in cells if c["wrong_results"] != 0]
if bad:
    sys.exit(f"bench_all: BENCH_shard.json has wrong results: {bad}")
shards = {c["shards"] for c in cells}
if not {1, 2, 4} <= shards:
    sys.exit(f"bench_all: BENCH_shard.json missing shard counts: {sorted(shards)}")
if not any(c["two_phase_commits"] > 0 for c in cells if c["remote_pct"] > 0):
    sys.exit("bench_all: no cross-shard cell exercised two-phase commit")
EOF

echo "bench_all: all artifacts regenerated and validated"
