#!/usr/bin/env bash
# Tier-1 verification: release build + full test suite, the WAL crash-point
# torture matrix, and (optionally) sanitizer passes over the concurrency-
# and recovery-sensitive tests.
#
#   scripts/verify.sh           # build + ctest + torture label
#   scripts/verify.sh --asan    # also configure/build/run the ASan/UBSan tree
#   scripts/verify.sh --tsan    # also run ThreadSanitizer over the threaded
#                               # suites (worker pool, net server, batched
#                               # executor morsels)
#   scripts/verify.sh --overload  # also run the deadline/overload robustness
#                               # lane: ctest -L overload, the 4x open-loop
#                               # degradation sweep (bench_overload), and the
#                               # bench_net guard that fails if the disarmed
#                               # deadline check costs >=1% of a loopback SELECT
#   scripts/verify.sh --crash   # also run the kill -9 process-crash torture
#                               # (ctest -L crash: 20+ SIGKILL/restart cycles
#                               # of a live serverd under encrypted TPC-C)
#                               # and the recovery-time + commit-amortization
#                               # ablations (bench_recovery ->
#                               # BENCH_recovery.json + BENCH_commit.json)
#   scripts/verify.sh --large-data  # also run the buffer-pool lane: the
#                               # bufferpool suite plus TPC-C with a working
#                               # set many times the pool (ctest -L
#                               # large_data, gated on AEDB_RUN_LARGE_DATA)
#   scripts/verify.sh --shard-torture  # also run the cross-shard atomicity
#                               # lane: ctest -L shard_torture with the kill
#                               # -9 serverd half enabled (every 2pc/* fault
#                               # boundary crashed and recovered), plus the
#                               # shard-scaling bench (bench_shard ->
#                               # BENCH_shard.json, zero wrong results)
#
# Exits non-zero on the first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run() { echo "==> $*"; "$@"; }

run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build -j "$JOBS"
run ctest --test-dir build --output-on-failure
# The torture matrix runs as part of the suite above; run it again by label so
# a filtered/flaky-retry CI lane still exercises every WAL crash point.
run ctest --test-dir build -L torture --output-on-failure
# Same rationale for the sharding/2PC suite: shard_test and the in-process
# 2pc/* fault matrix are tier-1, so a label-filtered lane still covers them.
run ctest --test-dir build -L shard --output-on-failure

if [[ "${1:-}" == "--asan" ]]; then
  run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAEDB_SANITIZE=address,undefined
  run cmake --build build-asan -j "$JOBS" --target fault_test \
      fault_torture_test storage_test net_test
  ASAN_OPTIONS=detect_leaks=0 run ctest --test-dir build-asan \
      -R 'fault_test|fault_torture_test|storage_test|net_test' \
      --output-on-failure
fi

if [[ "${1:-}" == "--overload" ]]; then
  # Deadline/overload robustness lane. The overload-labelled suite covers
  # deadline-bounded lock waits, worker-pool shedding, the admission gate and
  # the 4x socket stress; bench_overload gates graceful degradation (goodput
  # >= 70% of capacity at 4x offered load, zero wrong results, every shed
  # query typed); bench_net gates the disarmed deadline-check overhead.
  run ctest --test-dir build -L overload --output-on-failure
  run cmake --build build -j "$JOBS" --target bench_overload bench_net
  run ./build/bench/bench_overload
  run ./build/bench/bench_net
fi

if [[ "${1:-}" == "--crash" ]]; then
  # Process-crash durability lane, off tier-1 because it forks ~25 server
  # processes. crash_torture_test kill -9s a live aedb_serverd over a durable
  # data dir at seeded random points plus forced crashes at wal/append,
  # wal/sync, mid-checkpoint-publish, pre-WAL-truncate and mid-recovery, then
  # verifies exactly the acknowledged-commit prefix survives with zero wrong
  # results and no plaintext at rest. bench_recovery gates the checkpointing
  # rationale (recovery time vs WAL length) and sweeps group commit x pool
  # size (commits per fsync, TPC-C throughput vs per-commit baseline).
  AEDB_RUN_CRASH_TORTURE=1 run ctest --test-dir build -L crash \
      --output-on-failure
  run cmake --build build -j "$JOBS" --target bench_recovery
  run ./build/bench/bench_recovery
fi

if [[ "${1:-}" == "--large-data" ]]; then
  # Buffer-pool robustness lane, off tier-1 for runtime. The bufferpool label
  # covers pin/unpin + eviction races, paged-vs-unbounded equivalence and
  # group-commit durability; large_data runs TPC-C (incl. 4 concurrent
  # terminals) over a pool many times smaller than the working set, so every
  # access path crosses eviction + page-store I/O.
  run ctest --test-dir build -L bufferpool --output-on-failure
  AEDB_RUN_LARGE_DATA=1 run ctest --test-dir build -L large_data \
      --output-on-failure
fi

if [[ "${1:-}" == "--shard-torture" ]]; then
  # Cross-shard atomicity lane, off tier-1 because the kill -9 half forks
  # real aedb_serverd --shards=2 children. shard_torture_test crashes the
  # coordinator at every 2pc/* boundary (pre-prepare, prepared-without-
  # decision, pre-commit-decision, post-decision) via --die-at and mid-burst
  # SIGKILL, then verifies both ledger halves match exactly (all-or-nothing)
  # and every acknowledged commit survived. bench_shard records the 1/2/4
  # shard scaling sweep and gates zero wrong results.
  AEDB_RUN_SHARD_TORTURE=1 run ctest --test-dir build -L shard_torture \
      --output-on-failure
  run cmake --build build -j "$JOBS" --target bench_shard
  run ./build/bench/bench_shard
fi

if [[ "${1:-}" == "--tsan" ]]; then
  # The data-race surface: enclave worker pool, multi-threaded net server
  # (epoll shards + exec pool + connection-scale suite), overload shedding,
  # and the executor's batched enclave submissions (batch_equiv drives every
  # morsel path at batch sizes 1/3/256). net_scale_test self-shrinks its idle
  # herd under TSan so the instrumented run stays tractable.
  run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAEDB_SANITIZE=thread
  # bufferpool_test rides along for the pool's pin/evict/writeback races and
  # the group-commit leader/follower handoff; shard_test for the router's
  # cross-shard 2PC paths (per-shard engines + the coordinator's decision
  # log) under the differential TPC-C run.
  run cmake --build build-tsan -j "$JOBS" --target enclave_test net_test \
      server_test batch_equiv_test net_scale_test overload_test \
      bufferpool_test shard_test
  TSAN_OPTIONS=halt_on_error=1 run ctest --test-dir build-tsan \
      -R 'enclave_test|net_test|server_test|batch_equiv_test|net_scale_test|overload_test|bufferpool_test|shard_test' \
      --output-on-failure
fi

echo "verify: all checks passed"
