// aedb_serverd: the networked Always Encrypted server daemon.
//
// Stands up the full untrusted-host stack — attestation service, signed
// enclave image, SQL server — and serves the aedb wire protocol on a TCP
// port. AE-aware clients connect with net::SocketTransport and get the exact
// driver behaviour of the in-process path: parameters encrypted client-side,
// results decrypted client-side, key material only ever crossing the wire
// wrapped or sealed to the enclave.
//
//   aedb_serverd [--port N] [--shards N] [--enclave-threads N]
//                [--batch-size N] [--max-connections N] [--max-inflight N]
//                [--queue-depth N] [--retry-after-ms N] [--data-dir PATH]
//                [--checkpoint-bytes N] [--key-seed N] [--die-at point[:skip]]
//                [--drain-deadline-ms N] [--demo]
//
// --port 0 picks an ephemeral port (printed on stdout).
// --shards N > 1 runs N shared-nothing engine shards partitioned by TPC-C
// warehouse id behind the 2PC router; with --data-dir, shard i persists under
// <dir>/shard-<i> and the coordinator decision log in <dir>/2pc.log. Each
// shard has its own enclave, attested separately by connecting drivers.
// --max-connections caps concurrent TCP sessions; excess connections get a
// typed kOverloaded rejection frame instead of a silent worker thread.
// --max-inflight / --queue-depth / --retry-after-ms tune the admission gate,
// the bounded enclave work queue, and the retry-after hint stamped on every
// shed query (0 = unbounded / default hint).
// --data-dir makes the server durable: WAL, DDL journal and checkpoints live
// there and startup recovers from them (kill -9 safe).
// --checkpoint-bytes sets the WAL size that triggers a background checkpoint
// (0 = never checkpoint automatically).
// --key-seed derives the enclave author key and the HGS signing key
// deterministically, so a restarted server presents the same attestation
// identities — the crash-torture harness relies on this.
// --die-at arms a process-fatal fault: the process _Exit(137)s (kill -9
// equivalent) the (skip+1)-th time the named fault point is reached, e.g.
// --die-at wal/append:25 or --die-at fsio/pre_rename.
// --drain-deadline-ms bounds the SIGTERM graceful drain; a wedged connection
// cannot stall shutdown past it (exit code 3 on timeout).
// --demo additionally runs a loopback client through a provision → CREATE
// TABLE → INSERT → SELECT flow against the running server, then exits; this
// doubles as a smoke test (`aedb_serverd --demo --port 0`).

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "fault/fault.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "server/router.h"

using namespace aedb;
using types::Value;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::aedb::Status _st = (expr);                                    \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (0)

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

int RunDemo(net::Server& server, const attestation::HostGuardianService& hgs,
            const enclave::EnclaveImage& image) {
  keys::InMemoryKeyVault vault;
  CHECK_OK(vault.CreateKey("kv/demo", 1024));
  keys::KeyProviderRegistry providers;
  CHECK_OK(providers.Register(&vault));

  net::SocketTransport::Options topts;
  topts.port = server.port();
  auto transport = net::SocketTransport::Connect(topts);
  CHECK_OK(transport.status());
  std::printf("demo: connected, connection_id=%llu\n",
              static_cast<unsigned long long>((*transport)->connection_id()));

  client::DriverOptions dopts;
  dopts.enclave_policy.trusted_author_id = image.AuthorId();
  client::Driver driver(std::move(transport).value(), &providers,
                        hgs.signing_public(), dopts);

  CHECK_OK(driver.ProvisionCmk("DemoCMK", vault.name(), "kv/demo",
                               /*enclave_enabled=*/true));
  CHECK_OK(driver.ProvisionCek("DemoCEK", "DemoCMK"));
  CHECK_OK(driver.ExecuteDdl(
      "CREATE TABLE patients (id INT, ssn VARCHAR ENCRYPTED WITH ("
      "COLUMN_ENCRYPTION_KEY = DemoCEK, ENCRYPTION_TYPE = Randomized, "
      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))"));
  auto ins = driver.Query("INSERT INTO patients VALUES (@id, @ssn)",
                          {{"id", Value::Int32(1)},
                           {"ssn", Value::String("123-45-6789")}});
  CHECK_OK(ins.status());
  auto rows = driver.Query("SELECT ssn FROM patients WHERE id = @id",
                           {{"id", Value::Int32(1)}});
  CHECK_OK(rows.status());
  if (rows->rows.size() != 1 || rows->rows[0][0].str() != "123-45-6789") {
    std::fprintf(stderr, "FAILED: demo round trip returned wrong data\n");
    return 1;
  }
  std::printf("demo: encrypted round trip over TCP ok (ssn decrypted "
              "client-side: %s)\n", rows->rows[0][0].str().c_str());
  const net::ServerStats& s = server.stats();
  std::printf("demo: server stats: %llu conns, %llu frames in, %llu frames "
              "out, %llu bytes in, %llu bytes out\n",
              static_cast<unsigned long long>(s.connections_accepted.load()),
              static_cast<unsigned long long>(s.frames_in.load()),
              static_cast<unsigned long long>(s.frames_out.load()),
              static_cast<unsigned long long>(s.bytes_in.load()),
              static_cast<unsigned long long>(s.bytes_out.load()));
  std::printf("demo: enclave batching: %llu batch calls, %llu batched values, "
              "%llu transitions\n",
              static_cast<unsigned long long>(s.enclave_batch_evals.load()),
              static_cast<unsigned long long>(s.enclave_batched_values.load()),
              static_cast<unsigned long long>(s.enclave_transitions.load()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerConfig config;
  config.port = 5433;
  server::ServerOptions server_opts;
  bool demo = false;
  long key_seed = -1;
  long drain_deadline_ms = 5000;
  long shards = 1;
  auto parse_int = [&](const char* flag, const char* text, long min, long max,
                       long* out) {
    char* end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < min || v > max) {
      std::fprintf(stderr, "%s: expected an integer in [%ld, %ld], got '%s'\n",
                   flag, min, max, text);
      return false;
    }
    *out = v;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      if (!parse_int("--port", argv[++i], 0, 65535, &v)) return 2;
      config.port = static_cast<uint16_t>(v);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      // Shared-nothing engine shards, warehouse-partitioned (1 = plain
      // single-engine database, no router in the path).
      if (!parse_int("--shards", argv[++i], 1, 64, &v)) return 2;
      shards = v;
    } else if (std::strcmp(argv[i], "--enclave-threads") == 0 && i + 1 < argc) {
      if (!parse_int("--enclave-threads", argv[++i], 0, 256, &v)) return 2;
      server_opts.enclave_worker_threads = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--batch-size") == 0 && i + 1 < argc) {
      // Rows per execution morsel (1 = row-at-a-time enclave calls).
      if (!parse_int("--batch-size", argv[++i], 1, 1 << 20, &v)) return 2;
      server_opts.eval_batch_size = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--max-connections") == 0 && i + 1 < argc) {
      if (!parse_int("--max-connections", argv[++i], 0, 1 << 20, &v)) return 2;
      config.max_connections = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      if (!parse_int("--max-inflight", argv[++i], 0, 1 << 20, &v)) return 2;
      server_opts.max_inflight_queries = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--queue-depth") == 0 && i + 1 < argc) {
      if (!parse_int("--queue-depth", argv[++i], 0, 1 << 20, &v)) return 2;
      server_opts.enclave_queue_depth = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--retry-after-ms") == 0 && i + 1 < argc) {
      if (!parse_int("--retry-after-ms", argv[++i], 1, 60'000, &v)) return 2;
      server_opts.overload_retry_after_ms = static_cast<uint32_t>(v);
      config.overload_retry_after_ms = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--io-threads") == 0 && i + 1 < argc) {
      // Epoll shards; each owns a subset of connections end-to-end.
      if (!parse_int("--io-threads", argv[++i], 1, 64, &v)) return 2;
      config.io_threads = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--exec-threads") == 0 && i + 1 < argc) {
      // Base execution workers; the pool grows elastically to 8x this when
      // requests block (lock waits, fault-injected stalls).
      if (!parse_int("--exec-threads", argv[++i], 1, 256, &v)) return 2;
      config.exec_threads = static_cast<size_t>(v);
      config.max_exec_threads =
          std::max<size_t>(config.exec_threads * 8, config.exec_threads);
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0 && i + 1 < argc) {
      // 0 disables idle reaping (handshaken-but-quiet sockets live forever).
      if (!parse_int("--idle-timeout-ms", argv[++i], 0, 86'400'000, &v))
        return 2;
      config.idle_timeout_ms = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      server_opts.data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-bytes") == 0 && i + 1 < argc) {
      if (!parse_int("--checkpoint-bytes", argv[++i], 0, 1L << 40, &v))
        return 2;
      server_opts.checkpoint_wal_bytes = static_cast<uint64_t>(v);
    } else if (std::strcmp(argv[i], "--pool-pages") == 0 && i + 1 < argc) {
      // Buffer pool capacity in 8 KiB pages (0 = built-in default). Smaller
      // than the working set forces eviction to the pages/ spill directory.
      if (!parse_int("--pool-pages", argv[++i], 0, 1L << 30, &v)) return 2;
      server_opts.engine.pool_pages = static_cast<uint64_t>(v);
    } else if (std::strcmp(argv[i], "--flush-interval-ms") == 0 &&
               i + 1 < argc) {
      // Background dirty-page flusher period (0 = flush on eviction and
      // checkpoint only).
      if (!parse_int("--flush-interval-ms", argv[++i], 0, 3'600'000, &v))
        return 2;
      server_opts.engine.flush_interval_ms = static_cast<uint64_t>(v);
    } else if (std::strcmp(argv[i], "--group-commit-window-us") == 0 &&
               i + 1 < argc) {
      // Group-commit leader linger; 0 keeps pure natural batching.
      if (!parse_int("--group-commit-window-us", argv[++i], 0, 1'000'000, &v))
        return 2;
      server_opts.engine.group_commit_window_us = static_cast<uint64_t>(v);
    } else if (std::strcmp(argv[i], "--key-seed") == 0 && i + 1 < argc) {
      if (!parse_int("--key-seed", argv[++i], 0, 1L << 62, &v)) return 2;
      key_seed = v;
    } else if (std::strcmp(argv[i], "--die-at") == 0 && i + 1 < argc) {
      // point[:skip] — _Exit(137) on the (skip+1)-th hit of the fault point.
      std::string arg = argv[++i];
      long skip = 0;
      size_t colon = arg.rfind(':');
      if (colon != std::string::npos) {
        if (!parse_int("--die-at skip", arg.c_str() + colon + 1, 0,
                       1L << 40, &skip)) {
          return 2;
        }
        arg = arg.substr(0, colon);
      }
      fault::FaultSpec spec;
      spec.trigger = fault::FaultSpec::Trigger::kOneShot;
      spec.skip = static_cast<uint64_t>(skip);
      spec.die = true;
      fault::FaultRegistry::Global().Arm(arg, spec);
    } else if (std::strcmp(argv[i], "--drain-deadline-ms") == 0 &&
               i + 1 < argc) {
      if (!parse_int("--drain-deadline-ms", argv[++i], 1, 600'000, &v))
        return 2;
      drain_deadline_ms = v;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--shards N] [--enclave-threads N] "
                   "[--batch-size N] [--max-connections N] [--max-inflight N] "
                   "[--queue-depth N] [--retry-after-ms N] [--io-threads N] "
                   "[--exec-threads N] [--idle-timeout-ms N] "
                   "[--data-dir PATH] [--checkpoint-bytes N] "
                   "[--pool-pages N] [--flush-interval-ms N] "
                   "[--group-commit-window-us N] [--key-seed N] "
                   "[--die-at point[:skip]] [--drain-deadline-ms N] [--demo]\n",
                   argv[0]);
      return 2;
    }
  }

  // The untrusted-host stack. The enclave author key is generated fresh at
  // boot unless --key-seed pins it (and the HGS identity) so a restarted
  // process attests as the same publisher on the same service; clients learn
  // the author id out of band (here: printed).
  Bytes seed_bytes;
  if (key_seed >= 0) PutU64(&seed_bytes, static_cast<uint64_t>(key_seed));
  crypto::HmacDrbg drbg(
      key_seed >= 0 ? Slice(seed_bytes) : Slice(crypto::SecureRandom(48)),
      Slice(std::string_view("aedb-serverd")));
  auto author_key = crypto::GenerateRsaKey(1024, &drbg);
  auto image = enclave::EnclaveImage::MakeEsImage(/*version=*/1, author_key);
  attestation::HostGuardianService hgs =
      key_seed >= 0 ? attestation::HostGuardianService(Slice(seed_bytes))
                    : attestation::HostGuardianService();
  std::unique_ptr<server::SqlBackend> db;
  if (shards > 1) {
    server::ShardedOptions sopts;
    sopts.shards = static_cast<uint32_t>(shards);
    sopts.base = server_opts;
    auto sharded = std::make_unique<server::ShardedDatabase>(
        std::move(sopts), &hgs, &image);
    for (uint32_t i = 0; i < sharded->shard_count(); ++i) {
      hgs.RegisterTcgLog(sharded->shard(i)->platform()->tcg_log());
    }
    db = std::move(sharded);
  } else {
    auto single = std::make_unique<server::Database>(server_opts, &hgs, &image);
    hgs.RegisterTcgLog(single->platform()->tcg_log());
    db = std::move(single);
  }

  // Durable startup: recover catalog + data from the data dir (no-op when
  // --data-dir was not given). Under --shards each shard recovers from its
  // own WAL, then in-doubt 2PC participants settle against the decision log.
  CHECK_OK(db->Open());
  if (!server_opts.data_dir.empty()) {
    const server::RecoveryInfo& ri = db->recovery_info();
    std::printf("recovered %s in %llu ms: %llu WAL records replayed, "
                "%zu DDL statements, checkpoint_lsn=%llu%s\n",
                server_opts.data_dir.c_str(),
                static_cast<unsigned long long>(ri.recovery_ms),
                static_cast<unsigned long long>(ri.wal_records_replayed),
                ri.ddl_statements_replayed,
                static_cast<unsigned long long>(ri.from_checkpoint_lsn),
                ri.clean_shutdown ? " (clean shutdown)" : "");
  }

  net::Server server(db.get(), config);
  CHECK_OK(server.Start());
  std::printf("aedb_serverd listening on %s:%u (enclave author %s)\n",
              config.bind_address.c_str(), server.port(),
              HexEncode(image.AuthorId()).substr(0, 16).c_str());
  // The crash-torture supervisor parses the line above through a pipe.
  std::fflush(stdout);

  if (demo) {
    int rc = RunDemo(server, hgs, image);
    server.Stop();
    return rc;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    struct timespec ts = {0, 200'000'000};
    nanosleep(&ts, nullptr);
  }
  // Graceful drain, bounded: in-flight statements finish and their commits
  // reach the WAL, but a wedged connection cannot stall shutdown forever.
  auto stopped = std::async(std::launch::async, [&server] { server.Stop(); });
  if (stopped.wait_for(std::chrono::milliseconds(drain_deadline_ms)) !=
      std::future_status::ready) {
    std::fprintf(stderr,
                 "drain deadline (%ld ms) exceeded; forcing dirty exit\n",
                 drain_deadline_ms);
    // Best effort durability: fsync what the WALs already have. No clean
    // marker — the next startup runs normal recovery.
    (void)db->SyncWals();
    std::fflush(nullptr);
    std::_Exit(3);
  }
  const net::ServerStats& s = server.stats();
  std::printf("shutting down: %llu connections, %llu frames in, %llu frames "
              "out, %llu protocol errors\n",
              static_cast<unsigned long long>(s.connections_accepted.load()),
              static_cast<unsigned long long>(s.frames_in.load()),
              static_cast<unsigned long long>(s.frames_out.load()),
              static_cast<unsigned long long>(s.protocol_errors.load()));
  std::printf("overload: %llu conns rejected, %llu queries rejected, "
              "%llu expired, queue highwater %llu\n",
              static_cast<unsigned long long>(s.connections_rejected.load()),
              static_cast<unsigned long long>(s.queries_rejected.load()),
              static_cast<unsigned long long>(s.queries_expired.load()),
              static_cast<unsigned long long>(s.queue_depth_highwater.load()));
  Status shut = db->Shutdown();
  if (!shut.ok()) {
    std::fprintf(stderr, "shutdown checkpoint skipped: %s\n",
                 shut.ToString().c_str());
  }
  const server::DatabaseStats ds = db->Stats();
  std::printf("durability: recovery_ms=%llu wal_records_replayed=%llu "
              "torn_bytes_dropped=%llu checkpoints_taken=%llu wal_bytes=%llu "
              "fsyncs=%llu wal_file_errors=%llu\n",
              static_cast<unsigned long long>(ds.recovery_ms),
              static_cast<unsigned long long>(ds.wal_records_replayed),
              static_cast<unsigned long long>(ds.torn_bytes_dropped),
              static_cast<unsigned long long>(ds.checkpoints_taken),
              static_cast<unsigned long long>(ds.wal_bytes),
              static_cast<unsigned long long>(ds.fsyncs),
              static_cast<unsigned long long>(ds.wal_file_errors));
  std::printf("buffer pool: hits=%llu misses=%llu evictions=%llu "
              "writebacks=%llu pinned_highwater=%llu\n",
              static_cast<unsigned long long>(ds.pool_hits),
              static_cast<unsigned long long>(ds.pool_misses),
              static_cast<unsigned long long>(ds.pool_evictions),
              static_cast<unsigned long long>(ds.pool_writebacks),
              static_cast<unsigned long long>(ds.pool_pinned_highwater));
  std::printf("group commit: batches=%llu sync_requests=%llu "
              "commits_per_fsync=%.2f\n",
              static_cast<unsigned long long>(ds.group_commit_batches),
              static_cast<unsigned long long>(ds.commit_sync_requests),
              ds.commits_per_fsync);
  return 0;
}
