// Key lifecycle (paper §2.4.2): online initial encryption and key rotation
// through the enclave — no client round trip, no downtime — plus a CMK
// rotation that temporarily leaves the CEK wrapped under two masters.

#include <cstdio>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "server/database.h"

using namespace aedb;
using types::Value;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::aedb::Status _st = (expr);                                    \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (0)

int main() {
  keys::InMemoryKeyVault vault;
  CHECK_OK(vault.CreateKey("kv/master-2025", 1024));
  CHECK_OK(vault.CreateKey("kv/master-2026", 1024));
  keys::KeyProviderRegistry providers;
  CHECK_OK(providers.Register(&vault));
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("lifecycle")));
  auto author_key = crypto::GenerateRsaKey(1024, &drbg);
  auto image = enclave::EnclaveImage::MakeEsImage(1, author_key);
  attestation::HostGuardianService hgs;
  server::Database db(server::ServerOptions{}, &hgs, &image);
  hgs.RegisterTcgLog(db.platform()->tcg_log());
  client::DriverOptions dopts;
  dopts.enclave_policy.trusted_author_id = image.AuthorId();
  client::Driver driver(&db, &providers, hgs.signing_public(), dopts);

  CHECK_OK(driver.ProvisionCmk("CMK2025", vault.name(), "kv/master-2025", true));
  CHECK_OK(driver.ProvisionCek("CEK_A", "CMK2025"));
  CHECK_OK(driver.ProvisionCek("CEK_B", "CMK2025"));

  // Start with a PLAINTEXT column — a legacy table predating encryption.
  CHECK_OK(driver.ExecuteDdl(
      "CREATE TABLE Employees (Id INT, Salary BIGINT)"));
  for (int i = 1; i <= 20; ++i) {
    auto r = driver.Query("INSERT INTO Employees (Id, Salary) VALUES (@i, @s)",
                          {{"i", Value::Int32(i)}, {"s", Value::Int64(50000 + i * 1000)}});
    CHECK_OK(r.status());
  }

  // --- Initial encryption, in place, through the enclave. The driver signs
  //     the DDL text into the session; the enclave refuses the conversion
  //     without that authorization (§3.2).
  std::printf("1) initial encryption (plaintext -> RND under CEK_A)...\n");
  CHECK_OK(driver.ExecuteEnclaveDdl(
      "ALTER TABLE Employees ALTER COLUMN Salary BIGINT ENCRYPTED WITH ("
      "COLUMN_ENCRYPTION_KEY = CEK_A, ENCRYPTION_TYPE = Randomized, "
      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')"));
  auto q1 = driver.Query("SELECT COUNT(*) FROM Employees WHERE Salary >= @s",
                         {{"s", Value::Int64(60000)}});
  CHECK_OK(q1.status());
  std::printf("   salaries >= 60000: %lld (queried through the enclave)\n",
              (long long)q1->rows[0][0].i64());

  // --- CEK rotation: re-encrypt every cell under CEK_B, again in place.
  std::printf("2) CEK rotation (CEK_A -> CEK_B)...\n");
  CHECK_OK(driver.ExecuteEnclaveDdl(
      "ALTER TABLE Employees ALTER COLUMN Salary BIGINT ENCRYPTED WITH ("
      "COLUMN_ENCRYPTION_KEY = CEK_B, ENCRYPTION_TYPE = Randomized, "
      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')"));
  auto q2 = driver.Query("SELECT Salary FROM Employees WHERE Id = @i",
                         {{"i", Value::Int32(7)}});
  CHECK_OK(q2.status());
  std::printf("   employee 7 salary still readable: %lld\n",
              (long long)q2->rows[0][0].i64());

  // --- CMK rotation: no data re-encryption, only the wrapped CEK changes.
  //     During the rotation the CEK carries values under BOTH masters so
  //     clients on either CMK keep working (zero downtime, §2.4.2).
  std::printf("3) CMK rotation (CMK2025 -> CMK2026)...\n");
  {
    auto cek = db.catalog().GetCek("CEK_B");
    CHECK_OK(cek.status());
    keys::CmkInfo new_cmk = *keys::KeyTools::CreateCmk(
        &vault, "CMK2026", "kv/master-2026", true);
    CHECK_OK(db.catalog().AddCmk(new_cmk));
    // Unwrap under the old CMK, re-wrap under the new one, keep both.
    auto old_material =
        vault.UnwrapKey("kv/master-2025", (*cek)->values[0].encrypted_value);
    CHECK_OK(old_material.status());
    keys::CekInfo updated = **cek;
    CHECK_OK(keys::KeyTools::AddCekValueForCmkRotation(&vault, new_cmk,
                                                       *old_material, &updated));
    std::printf("   CEK_B now wrapped under %zu masters\n", updated.values.size());
    // Rotation complete: drop the old wrapping.
    updated.values.erase(updated.values.begin());
    CHECK_OK(db.catalog().UpdateCek(updated));
  }
  // A fresh driver (fresh caches) must unwrap via the NEW master only.
  client::Driver fresh(&db, &providers, hgs.signing_public(), dopts);
  auto q3 = fresh.Query("SELECT COUNT(*) FROM Employees WHERE Salary > @s",
                        {{"s", Value::Int64(0)}});
  CHECK_OK(q3.status());
  std::printf("   fresh driver reads via CMK2026: %lld rows\n",
              (long long)q3->rows[0][0].i64());

  // --- Finally: decryption DDL (removing encryption) is also authorized.
  std::printf("4) removing encryption (RND -> plaintext)...\n");
  CHECK_OK(driver.ExecuteEnclaveDdl(
      "ALTER TABLE Employees ALTER COLUMN Salary BIGINT"));
  auto q4 = driver.Query("SELECT MAX(Salary) FROM Employees");
  CHECK_OK(q4.status());
  std::printf("   max salary (now plaintext): %lld\n",
              (long long)q4->rows[0][0].AsInt64());
  std::printf("key_lifecycle OK\n");
  return 0;
}
