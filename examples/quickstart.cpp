// Quickstart: stand up a full Always Encrypted deployment — key vault,
// attestation service, enclave-enabled server — then create an encrypted
// table and query it through the transparent client driver.
//
// Everything sensitive stays encrypted inside the server: the driver
// encrypts parameters on the way in and decrypts results on the way out
// (paper Figure 3).

#include <cstdio>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "server/database.h"

using namespace aedb;
using types::Value;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::aedb::Status _st = (expr);                                  \
    if (!_st.ok()) {                                              \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (0)

int main() {
  // --- 1. Client-side key infrastructure (the server never sees the CMK).
  keys::InMemoryKeyVault vault;  // simulated Azure Key Vault
  CHECK_OK(vault.CreateKey("https://vault.example/keys/master", 1024));
  keys::KeyProviderRegistry providers;
  CHECK_OK(providers.Register(&vault));

  // --- 2. The enclave binary, signed by its author, and the attestation
  //        service that will vouch for the host.
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("quickstart")));
  auto author_key = crypto::GenerateRsaKey(1024, &drbg);
  auto image = enclave::EnclaveImage::MakeEsImage(/*version=*/1, author_key);
  attestation::HostGuardianService hgs;

  // --- 3. The (untrusted) SQL server, hosting the enclave.
  server::ServerOptions server_opts;
  server::Database db(server_opts, &hgs, &image);
  hgs.RegisterTcgLog(db.platform()->tcg_log());  // offline whitelist step

  // --- 4. The AE-aware driver: trusts the enclave author and the HGS key.
  client::DriverOptions driver_opts;
  driver_opts.enclave_policy.trusted_author_id = image.AuthorId();
  driver_opts.trusted_key_paths = {"https://vault.example/keys/master"};
  client::Driver driver(&db, &providers, hgs.signing_public(), driver_opts);

  // --- 5. Provision keys and an encrypted table (paper Figure 1).
  CHECK_OK(driver.ProvisionCmk("MyCMK", vault.name(),
                               "https://vault.example/keys/master",
                               /*enclave_enabled=*/true));
  CHECK_OK(driver.ProvisionCek("MyCEK", "MyCMK"));
  CHECK_OK(driver.ExecuteDdl(
      "CREATE TABLE T (id INT, value INT ENCRYPTED WITH ("
      "COLUMN_ENCRYPTION_KEY = MyCEK, ENCRYPTION_TYPE = Randomized, "
      "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))"));

  // --- 6. Transparent inserts: the driver encrypts @v client-side.
  for (int i = 1; i <= 5; ++i) {
    auto r = driver.Query("INSERT INTO T (id, value) VALUES (@id, @v)",
                          {{"id", Value::Int32(i)}, {"v", Value::Int32(i * 100)}});
    CHECK_OK(r.status());
  }

  // --- 7. The paper's running example: equality over a randomized column.
  //        The driver attests the enclave, installs the CEK over the secure
  //        channel, and the predicate evaluates inside the TEE.
  auto eq = driver.Query("SELECT id FROM T WHERE value = @v",
                         {{"v", Value::Int32(300)}});
  CHECK_OK(eq.status());
  std::printf("value = 300  ->  id = %d\n", eq->rows[0][0].i32());

  // --- 8. Range queries work too (impossible without the enclave).
  auto range = driver.Query("SELECT id, value FROM T WHERE value > @lo",
                            {{"lo", Value::Int32(250)}});
  CHECK_OK(range.status());
  std::printf("value > 250  ->  %zu rows:\n", range->rows.size());
  for (const auto& row : range->rows) {
    std::printf("  id=%d value=%d\n", row[0].i32(), row[1].i32());
  }

  // --- 9. The adversary's view: scan the server's pages for our plaintext.
  bool leaked = false;
  Bytes needle = Value::Int32(300).Encode();
  db.engine().ForEachPageRaw([&](uint32_t, Slice page) {
    for (size_t i = 0; i + needle.size() <= page.size(); ++i) {
      if (std::equal(needle.begin(), needle.end(), page.data() + i)) leaked = true;
    }
  });
  std::printf("plaintext 300 on server pages: %s\n", leaked ? "LEAKED" : "no");
  std::printf("enclave expression evaluations: %lu\n",
              (unsigned long)db.enclave()->stats().evals.load());
  std::printf("quickstart OK\n");
  return 0;
}
