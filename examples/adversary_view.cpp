// The strong adversary's view (paper §2.6, Figure 5): an operator with full
// access to the server process inspects pages, the WAL, the wire, and the
// indexes — and sees exactly the operational leakage the paper enumerates,
// nothing more.

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "server/database.h"

using namespace aedb;
using types::Value;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::aedb::Status _st = (expr);                                    \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (0)

static bool Contains(Slice haystack, std::string_view needle) {
  std::string_view h(reinterpret_cast<const char*>(haystack.data()),
                     haystack.size());
  return h.find(needle) != std::string_view::npos;
}

int main() {
  keys::InMemoryKeyVault vault;
  CHECK_OK(vault.CreateKey("kv/m", 1024));
  keys::KeyProviderRegistry providers;
  CHECK_OK(providers.Register(&vault));
  crypto::HmacDrbg drbg(crypto::SecureRandom(48), Slice(std::string_view("adv")));
  auto author_key = crypto::GenerateRsaKey(1024, &drbg);
  auto image = enclave::EnclaveImage::MakeEsImage(1, author_key);
  attestation::HostGuardianService hgs;
  server::ServerOptions opts;
  opts.capture_tds = true;  // the adversary records the wire
  server::Database db(opts, &hgs, &image);
  hgs.RegisterTcgLog(db.platform()->tcg_log());
  client::DriverOptions dopts;
  dopts.enclave_policy.trusted_author_id = image.AuthorId();
  client::Driver driver(&db, &providers, hgs.signing_public(), dopts);

  CHECK_OK(driver.ProvisionCmk("CMK", vault.name(), "kv/m", true));
  CHECK_OK(driver.ProvisionCek("CEK", "CMK"));
  CHECK_OK(driver.ExecuteDdl(
      "CREATE TABLE Accounts (AcctId INT, "
      "Branch VARCHAR(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK, "
      "ENCRYPTION_TYPE = Deterministic, ALGORITHM = "
      "'AEAD_AES_256_CBC_HMAC_SHA_256'), "
      "Balance BIGINT ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK, "
      "ENCRYPTION_TYPE = Randomized, ALGORITHM = "
      "'AEAD_AES_256_CBC_HMAC_SHA_256'))"));

  struct A { int id; const char* branch; int64_t bal; };
  A accounts[] = {{1, "Seattle", 100}, {2, "Seattle", 200}, {3, "Zurich", 200}};
  for (const A& a : accounts) {
    auto r = driver.Query(
        "INSERT INTO Accounts (AcctId, Branch, Balance) VALUES (@i, @b, @v)",
        {{"i", Value::Int32(a.id)},
         {"b", Value::String(a.branch)},
         {"v", Value::Int64(a.bal)}});
    CHECK_OK(r.status());
  }
  auto q = driver.Query("SELECT AcctId FROM Accounts WHERE Balance = @v",
                        {{"v", Value::Int64(200)}});
  CHECK_OK(q.status());

  std::printf("=== The strong adversary inspects the server ===\n\n");

  // 1. Pages: ciphertext only (Figure 2's right-hand table).
  std::printf("[pages]   'Seattle' in plaintext on any page?  %s\n",
              [&] {
                bool found = false;
                db.engine().ForEachPageRaw([&](uint32_t, Slice p) {
                  if (Contains(p, "Seattle")) found = true;
                });
                return found ? "YES (broken!)" : "no";
              }());

  // 2. DET frequency leak (Figure 5, row 1): equal branches share a cell.
  const sql::TableDef* table = *db.catalog().GetTable("Accounts");
  std::map<std::string, int> det_histogram;
  std::set<std::string> rnd_cells;
  db.engine().table(table->id)->Scan([&](const storage::Rid&, Slice rec) {
    auto row = sql::DecodeRow(rec, 3);
    det_histogram[HexEncode((*row)[1].bin()).substr(0, 16)]++;
    rnd_cells.insert(HexEncode((*row)[2].bin()).substr(0, 16));
    return true;
  });
  std::printf("[DET]     branch ciphertext histogram (frequency leak):\n");
  for (auto& [cell, count] : det_histogram) {
    std::printf("          %s... x%d\n", cell.c_str(), count);
  }
  std::printf("[RND]     balance cells all distinct despite equal values: %s\n",
              rnd_cells.size() == 3 ? "yes (IND-CPA)" : "NO");

  // 3. The wire: parameters and results crossed as ciphertext.
  std::printf("[TDS]     balance 200 plaintext in last request?   %s\n",
              Contains(db.tds_capture().last_request, "\xc8") ? "maybe-bytes"
                                                              : "no");
  std::printf("[WAL]     'Zurich' in the log?                     %s\n",
              Contains(db.engine().wal().RawBytes(), "Zurich") ? "YES (broken!)"
                                                               : "no");

  // 4. Predicate results leak one bit per row to the host (Figure 5):
  //    the adversary sees WHICH rows matched (access pattern), not values.
  std::printf("[leak]    enclave told the host which rows matched: %zu row(s)\n",
              q->rows.size());

  // 5. Building a range index reveals ordering (Figure 5, row 2).
  CHECK_OK(driver.ExecuteDdl("CREATE INDEX idx_bal ON Accounts (Balance)"));
  const sql::IndexDef* idx = *db.catalog().GetIndex("idx_bal");
  std::printf("[index]   encrypted range index exposes ciphertexts in "
              "plaintext ORDER:\n");
  int pos = 0;
  for (auto it = db.engine().index_tree(idx->id)->Begin(); it.Valid(); it.Next()) {
    auto key = it.key();
    if (!key.ok()) continue;
    std::printf("          #%d: %s...\n", ++pos,
                HexEncode(Slice(key->data(), key->size())).substr(0, 16).c_str());
  }
  std::printf("          (ordering leak authorized by creating the index; "
              "values stay hidden)\n");

  std::printf("\nadversary_view OK\n");
  return 0;
}
