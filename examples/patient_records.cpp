// Healthcare scenario (the paper's customer profile: "health care
// organizations ... encrypt only PII columns", §1.2): a patient registry
// whose name / SSN / city are encrypted, supporting the rich queries AEv2
// added — range comparisons and LIKE pattern matching on randomized
// encryption — while billing analytics run on plaintext columns.

#include <cstdio>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "server/database.h"

using namespace aedb;
using types::Value;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::aedb::Status _st = (expr);                                    \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (0)

int main() {
  keys::InMemoryKeyVault vault;
  CHECK_OK(vault.CreateKey("kv/hospital-master", 1024));
  keys::KeyProviderRegistry providers;
  CHECK_OK(providers.Register(&vault));
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("patients")));
  auto author_key = crypto::GenerateRsaKey(1024, &drbg);
  auto image = enclave::EnclaveImage::MakeEsImage(1, author_key);
  attestation::HostGuardianService hgs;
  server::Database db(server::ServerOptions{}, &hgs, &image);
  hgs.RegisterTcgLog(db.platform()->tcg_log());
  client::DriverOptions dopts;
  dopts.enclave_policy.trusted_author_id = image.AuthorId();
  client::Driver driver(&db, &providers, hgs.signing_public(), dopts);

  CHECK_OK(driver.ProvisionCmk("HospitalCMK", vault.name(),
                               "kv/hospital-master", true));
  CHECK_OK(driver.ProvisionCek("PatientCEK", "HospitalCMK"));
  CHECK_OK(driver.ExecuteDdl(
      "CREATE TABLE Patients ("
      "  PatientId INT NOT NULL,"
      "  Name VARCHAR(40) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = PatientCEK,"
      "    ENCRYPTION_TYPE = Randomized, ALGORITHM = "
      "'AEAD_AES_256_CBC_HMAC_SHA_256'),"
      "  Ssn CHAR(11) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = PatientCEK,"
      "    ENCRYPTION_TYPE = Deterministic, ALGORITHM = "
      "'AEAD_AES_256_CBC_HMAC_SHA_256'),"
      "  BirthYear INT ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = PatientCEK,"
      "    ENCRYPTION_TYPE = Randomized, ALGORITHM = "
      "'AEAD_AES_256_CBC_HMAC_SHA_256'),"
      "  Ward VARCHAR(10),"
      "  BillTotal DOUBLE)"));
  // A range index over encrypted birth years: ordered by plaintext via
  // enclave comparisons, while the server stores only ciphertext.
  CHECK_OK(driver.ExecuteDdl("CREATE INDEX idx_birth ON Patients (BirthYear)"));

  struct P { int id; const char* name; const char* ssn; int birth; const char* ward; double bill; };
  P patients[] = {
      {1, "SMITH, ALICE", "123-45-6789", 1954, "CARDIO", 1200.0},
      {2, "SMITHERS, BOB", "987-65-4321", 1971, "CARDIO", 800.5},
      {3, "NGUYEN, CARL", "222-33-4444", 1988, "ORTHO", 430.0},
      {4, "SMETANA, DANA", "555-66-7777", 1950, "ORTHO", 2210.0},
      {5, "OKAFOR, EMEKA", "888-99-0000", 2001, "PEDS", 95.0},
  };
  for (const P& p : patients) {
    auto r = driver.Query(
        "INSERT INTO Patients (PatientId, Name, Ssn, BirthYear, Ward, "
        "BillTotal) VALUES (@id, @n, @s, @b, @w, @t)",
        {{"id", Value::Int32(p.id)},
         {"n", Value::String(p.name)},
         {"s", Value::String(p.ssn)},
         {"b", Value::Int32(p.birth)},
         {"w", Value::String(p.ward)},
         {"t", Value::Double(p.bill)}});
    CHECK_OK(r.status());
  }

  // Point lookup by SSN: DET equality, evaluated on ciphertext — no enclave.
  auto by_ssn = driver.Query("SELECT Name FROM Patients WHERE Ssn = @s",
                             {{"s", Value::String("222-33-4444")}});
  CHECK_OK(by_ssn.status());
  std::printf("SSN 222-33-4444 -> %s\n", by_ssn->rows[0][0].str().c_str());

  // Name prefix search over RANDOMIZED encryption: LIKE inside the enclave.
  auto smiths = driver.Query(
      "SELECT PatientId, Name FROM Patients WHERE Name LIKE @p",
      {{"p", Value::String("SMITH%")}});
  CHECK_OK(smiths.status());
  std::printf("Name LIKE 'SMITH%%' -> %zu patients\n", smiths->rows.size());
  for (const auto& row : smiths->rows) {
    std::printf("  #%d %s\n", row[0].i32(), row[1].str().c_str());
  }

  // Age cohort: a range over encrypted birth years, served by the encrypted
  // range index (enclave-ordered B+-tree).
  auto seniors = driver.Query(
      "SELECT Name, BirthYear FROM Patients WHERE BirthYear < @y",
      {{"y", Value::Int32(1960)}});
  CHECK_OK(seniors.status());
  std::printf("born before 1960 -> %zu patients\n", seniors->rows.size());

  // Billing analytics on plaintext columns are unaffected by AE.
  auto billing = driver.Query(
      "SELECT Ward, COUNT(*), SUM(BillTotal) FROM Patients GROUP BY Ward");
  CHECK_OK(billing.status());
  std::printf("billing by ward:\n");
  for (const auto& row : billing->rows) {
    std::printf("  %-8s n=%lld  total=%.2f\n", row[0].str().c_str(),
                (long long)row[1].i64(), row[2].dbl());
  }

  std::printf("patient_records OK (enclave evals: %lu, comparisons: %lu)\n",
              (unsigned long)db.enclave()->stats().evals.load(),
              (unsigned long)db.enclave()->stats().comparisons.load());
  return 0;
}
