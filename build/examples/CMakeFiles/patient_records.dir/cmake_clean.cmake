file(REMOVE_RECURSE
  "CMakeFiles/patient_records.dir/patient_records.cpp.o"
  "CMakeFiles/patient_records.dir/patient_records.cpp.o.d"
  "patient_records"
  "patient_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patient_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
