# Empty compiler generated dependencies file for patient_records.
# This may be replaced when dependencies are built.
