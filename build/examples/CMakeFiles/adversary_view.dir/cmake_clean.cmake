file(REMOVE_RECURSE
  "CMakeFiles/adversary_view.dir/adversary_view.cpp.o"
  "CMakeFiles/adversary_view.dir/adversary_view.cpp.o.d"
  "adversary_view"
  "adversary_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
