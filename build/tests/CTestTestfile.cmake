# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(crypto_test "/root/repo/build/tests/crypto_test")
set_tests_properties(crypto_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bignum_test "/root/repo/build/tests/bignum_test")
set_tests_properties(bignum_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(types_test "/root/repo/build/tests/types_test")
set_tests_properties(types_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(es_test "/root/repo/build/tests/es_test")
set_tests_properties(es_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(enclave_test "/root/repo/build/tests/enclave_test")
set_tests_properties(enclave_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(attestation_test "/root/repo/build/tests/attestation_test")
set_tests_properties(attestation_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sql_test "/root/repo/build/tests/sql_test")
set_tests_properties(sql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(e2e_test "/root/repo/build/tests/e2e_test")
set_tests_properties(e2e_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tpcc_test "/root/repo/build/tests/tpcc_test")
set_tests_properties(tpcc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(server_test "/root/repo/build/tests/server_test")
set_tests_properties(server_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;aedb_add_test;/root/repo/tests/CMakeLists.txt;0;")
