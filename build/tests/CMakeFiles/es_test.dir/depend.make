# Empty dependencies file for es_test.
# This may be replaced when dependencies are built.
