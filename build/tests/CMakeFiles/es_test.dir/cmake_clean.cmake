file(REMOVE_RECURSE
  "CMakeFiles/es_test.dir/es_test.cc.o"
  "CMakeFiles/es_test.dir/es_test.cc.o.d"
  "es_test"
  "es_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
