file(REMOVE_RECURSE
  "CMakeFiles/aedb_crypto.dir/aes.cc.o"
  "CMakeFiles/aedb_crypto.dir/aes.cc.o.d"
  "CMakeFiles/aedb_crypto.dir/bignum.cc.o"
  "CMakeFiles/aedb_crypto.dir/bignum.cc.o.d"
  "CMakeFiles/aedb_crypto.dir/cbc.cc.o"
  "CMakeFiles/aedb_crypto.dir/cbc.cc.o.d"
  "CMakeFiles/aedb_crypto.dir/cell_codec.cc.o"
  "CMakeFiles/aedb_crypto.dir/cell_codec.cc.o.d"
  "CMakeFiles/aedb_crypto.dir/dh.cc.o"
  "CMakeFiles/aedb_crypto.dir/dh.cc.o.d"
  "CMakeFiles/aedb_crypto.dir/drbg.cc.o"
  "CMakeFiles/aedb_crypto.dir/drbg.cc.o.d"
  "CMakeFiles/aedb_crypto.dir/hmac.cc.o"
  "CMakeFiles/aedb_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/aedb_crypto.dir/rsa.cc.o"
  "CMakeFiles/aedb_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/aedb_crypto.dir/sha256.cc.o"
  "CMakeFiles/aedb_crypto.dir/sha256.cc.o.d"
  "libaedb_crypto.a"
  "libaedb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
