# Empty dependencies file for aedb_crypto.
# This may be replaced when dependencies are built.
