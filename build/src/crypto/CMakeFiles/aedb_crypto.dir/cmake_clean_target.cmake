file(REMOVE_RECURSE
  "libaedb_crypto.a"
)
