
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/btree.cc" "src/storage/CMakeFiles/aedb_storage.dir/btree.cc.o" "gcc" "src/storage/CMakeFiles/aedb_storage.dir/btree.cc.o.d"
  "/root/repo/src/storage/engine.cc" "src/storage/CMakeFiles/aedb_storage.dir/engine.cc.o" "gcc" "src/storage/CMakeFiles/aedb_storage.dir/engine.cc.o.d"
  "/root/repo/src/storage/heap_table.cc" "src/storage/CMakeFiles/aedb_storage.dir/heap_table.cc.o" "gcc" "src/storage/CMakeFiles/aedb_storage.dir/heap_table.cc.o.d"
  "/root/repo/src/storage/lock_manager.cc" "src/storage/CMakeFiles/aedb_storage.dir/lock_manager.cc.o" "gcc" "src/storage/CMakeFiles/aedb_storage.dir/lock_manager.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/aedb_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/aedb_storage.dir/page.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/aedb_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/aedb_storage.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aedb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
