# Empty compiler generated dependencies file for aedb_storage.
# This may be replaced when dependencies are built.
