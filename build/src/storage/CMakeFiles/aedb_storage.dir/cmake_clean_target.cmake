file(REMOVE_RECURSE
  "libaedb_storage.a"
)
