file(REMOVE_RECURSE
  "CMakeFiles/aedb_storage.dir/btree.cc.o"
  "CMakeFiles/aedb_storage.dir/btree.cc.o.d"
  "CMakeFiles/aedb_storage.dir/engine.cc.o"
  "CMakeFiles/aedb_storage.dir/engine.cc.o.d"
  "CMakeFiles/aedb_storage.dir/heap_table.cc.o"
  "CMakeFiles/aedb_storage.dir/heap_table.cc.o.d"
  "CMakeFiles/aedb_storage.dir/lock_manager.cc.o"
  "CMakeFiles/aedb_storage.dir/lock_manager.cc.o.d"
  "CMakeFiles/aedb_storage.dir/page.cc.o"
  "CMakeFiles/aedb_storage.dir/page.cc.o.d"
  "CMakeFiles/aedb_storage.dir/wal.cc.o"
  "CMakeFiles/aedb_storage.dir/wal.cc.o.d"
  "libaedb_storage.a"
  "libaedb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
