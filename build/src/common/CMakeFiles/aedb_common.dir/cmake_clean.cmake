file(REMOVE_RECURSE
  "CMakeFiles/aedb_common.dir/bytes.cc.o"
  "CMakeFiles/aedb_common.dir/bytes.cc.o.d"
  "CMakeFiles/aedb_common.dir/random.cc.o"
  "CMakeFiles/aedb_common.dir/random.cc.o.d"
  "CMakeFiles/aedb_common.dir/status.cc.o"
  "CMakeFiles/aedb_common.dir/status.cc.o.d"
  "libaedb_common.a"
  "libaedb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
