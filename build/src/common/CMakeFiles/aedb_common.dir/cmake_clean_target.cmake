file(REMOVE_RECURSE
  "libaedb_common.a"
)
