# Empty compiler generated dependencies file for aedb_common.
# This may be replaced when dependencies are built.
