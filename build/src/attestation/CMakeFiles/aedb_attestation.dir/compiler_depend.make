# Empty compiler generated dependencies file for aedb_attestation.
# This may be replaced when dependencies are built.
