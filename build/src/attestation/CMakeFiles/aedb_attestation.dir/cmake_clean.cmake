file(REMOVE_RECURSE
  "CMakeFiles/aedb_attestation.dir/attestation.cc.o"
  "CMakeFiles/aedb_attestation.dir/attestation.cc.o.d"
  "libaedb_attestation.a"
  "libaedb_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
