file(REMOVE_RECURSE
  "libaedb_attestation.a"
)
