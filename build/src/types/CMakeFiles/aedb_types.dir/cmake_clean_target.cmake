file(REMOVE_RECURSE
  "libaedb_types.a"
)
