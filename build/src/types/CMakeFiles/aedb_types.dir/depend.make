# Empty dependencies file for aedb_types.
# This may be replaced when dependencies are built.
