file(REMOVE_RECURSE
  "CMakeFiles/aedb_types.dir/encryption_type.cc.o"
  "CMakeFiles/aedb_types.dir/encryption_type.cc.o.d"
  "CMakeFiles/aedb_types.dir/value.cc.o"
  "CMakeFiles/aedb_types.dir/value.cc.o.d"
  "libaedb_types.a"
  "libaedb_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
