
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/es/evaluator.cc" "src/es/CMakeFiles/aedb_es.dir/evaluator.cc.o" "gcc" "src/es/CMakeFiles/aedb_es.dir/evaluator.cc.o.d"
  "/root/repo/src/es/program.cc" "src/es/CMakeFiles/aedb_es.dir/program.cc.o" "gcc" "src/es/CMakeFiles/aedb_es.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/aedb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/aedb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aedb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
