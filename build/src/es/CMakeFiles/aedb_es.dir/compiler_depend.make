# Empty compiler generated dependencies file for aedb_es.
# This may be replaced when dependencies are built.
