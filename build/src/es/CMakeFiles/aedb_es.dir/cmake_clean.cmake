file(REMOVE_RECURSE
  "CMakeFiles/aedb_es.dir/evaluator.cc.o"
  "CMakeFiles/aedb_es.dir/evaluator.cc.o.d"
  "CMakeFiles/aedb_es.dir/program.cc.o"
  "CMakeFiles/aedb_es.dir/program.cc.o.d"
  "libaedb_es.a"
  "libaedb_es.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_es.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
