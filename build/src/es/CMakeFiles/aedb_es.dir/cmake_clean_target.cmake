file(REMOVE_RECURSE
  "libaedb_es.a"
)
