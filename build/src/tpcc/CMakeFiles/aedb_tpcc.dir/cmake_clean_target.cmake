file(REMOVE_RECURSE
  "libaedb_tpcc.a"
)
