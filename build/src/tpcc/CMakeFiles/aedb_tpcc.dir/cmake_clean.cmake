file(REMOVE_RECURSE
  "CMakeFiles/aedb_tpcc.dir/tpcc.cc.o"
  "CMakeFiles/aedb_tpcc.dir/tpcc.cc.o.d"
  "libaedb_tpcc.a"
  "libaedb_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
