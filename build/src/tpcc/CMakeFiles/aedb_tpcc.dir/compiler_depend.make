# Empty compiler generated dependencies file for aedb_tpcc.
# This may be replaced when dependencies are built.
