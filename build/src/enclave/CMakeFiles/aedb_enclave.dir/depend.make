# Empty dependencies file for aedb_enclave.
# This may be replaced when dependencies are built.
