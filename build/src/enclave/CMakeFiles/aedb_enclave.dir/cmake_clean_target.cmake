file(REMOVE_RECURSE
  "libaedb_enclave.a"
)
