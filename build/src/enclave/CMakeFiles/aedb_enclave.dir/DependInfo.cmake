
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enclave/enclave.cc" "src/enclave/CMakeFiles/aedb_enclave.dir/enclave.cc.o" "gcc" "src/enclave/CMakeFiles/aedb_enclave.dir/enclave.cc.o.d"
  "/root/repo/src/enclave/nonce_tracker.cc" "src/enclave/CMakeFiles/aedb_enclave.dir/nonce_tracker.cc.o" "gcc" "src/enclave/CMakeFiles/aedb_enclave.dir/nonce_tracker.cc.o.d"
  "/root/repo/src/enclave/worker_pool.cc" "src/enclave/CMakeFiles/aedb_enclave.dir/worker_pool.cc.o" "gcc" "src/enclave/CMakeFiles/aedb_enclave.dir/worker_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/es/CMakeFiles/aedb_es.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/aedb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/aedb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aedb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
