file(REMOVE_RECURSE
  "CMakeFiles/aedb_enclave.dir/enclave.cc.o"
  "CMakeFiles/aedb_enclave.dir/enclave.cc.o.d"
  "CMakeFiles/aedb_enclave.dir/nonce_tracker.cc.o"
  "CMakeFiles/aedb_enclave.dir/nonce_tracker.cc.o.d"
  "CMakeFiles/aedb_enclave.dir/worker_pool.cc.o"
  "CMakeFiles/aedb_enclave.dir/worker_pool.cc.o.d"
  "libaedb_enclave.a"
  "libaedb_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
