file(REMOVE_RECURSE
  "CMakeFiles/aedb_server.dir/database.cc.o"
  "CMakeFiles/aedb_server.dir/database.cc.o.d"
  "libaedb_server.a"
  "libaedb_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
