# Empty dependencies file for aedb_server.
# This may be replaced when dependencies are built.
