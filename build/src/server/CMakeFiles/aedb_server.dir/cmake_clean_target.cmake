file(REMOVE_RECURSE
  "libaedb_server.a"
)
