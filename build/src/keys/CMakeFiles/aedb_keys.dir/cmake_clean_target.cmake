file(REMOVE_RECURSE
  "libaedb_keys.a"
)
