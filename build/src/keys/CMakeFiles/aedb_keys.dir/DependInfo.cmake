
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/keys/key_metadata.cc" "src/keys/CMakeFiles/aedb_keys.dir/key_metadata.cc.o" "gcc" "src/keys/CMakeFiles/aedb_keys.dir/key_metadata.cc.o.d"
  "/root/repo/src/keys/key_provider.cc" "src/keys/CMakeFiles/aedb_keys.dir/key_provider.cc.o" "gcc" "src/keys/CMakeFiles/aedb_keys.dir/key_provider.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/aedb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aedb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
