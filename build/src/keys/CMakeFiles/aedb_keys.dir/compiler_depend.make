# Empty compiler generated dependencies file for aedb_keys.
# This may be replaced when dependencies are built.
