file(REMOVE_RECURSE
  "CMakeFiles/aedb_keys.dir/key_metadata.cc.o"
  "CMakeFiles/aedb_keys.dir/key_metadata.cc.o.d"
  "CMakeFiles/aedb_keys.dir/key_provider.cc.o"
  "CMakeFiles/aedb_keys.dir/key_provider.cc.o.d"
  "libaedb_keys.a"
  "libaedb_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
