# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("keys")
subdirs("types")
subdirs("es")
subdirs("enclave")
subdirs("attestation")
subdirs("storage")
subdirs("sql")
subdirs("server")
subdirs("client")
subdirs("tpcc")
