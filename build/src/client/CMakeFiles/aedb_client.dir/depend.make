# Empty dependencies file for aedb_client.
# This may be replaced when dependencies are built.
