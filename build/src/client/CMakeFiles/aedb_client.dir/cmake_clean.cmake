file(REMOVE_RECURSE
  "CMakeFiles/aedb_client.dir/driver.cc.o"
  "CMakeFiles/aedb_client.dir/driver.cc.o.d"
  "libaedb_client.a"
  "libaedb_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
