file(REMOVE_RECURSE
  "libaedb_client.a"
)
