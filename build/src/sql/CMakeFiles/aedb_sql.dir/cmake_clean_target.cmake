file(REMOVE_RECURSE
  "libaedb_sql.a"
)
