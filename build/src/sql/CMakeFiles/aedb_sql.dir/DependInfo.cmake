
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/binder.cc" "src/sql/CMakeFiles/aedb_sql.dir/binder.cc.o" "gcc" "src/sql/CMakeFiles/aedb_sql.dir/binder.cc.o.d"
  "/root/repo/src/sql/catalog.cc" "src/sql/CMakeFiles/aedb_sql.dir/catalog.cc.o" "gcc" "src/sql/CMakeFiles/aedb_sql.dir/catalog.cc.o.d"
  "/root/repo/src/sql/compiler.cc" "src/sql/CMakeFiles/aedb_sql.dir/compiler.cc.o" "gcc" "src/sql/CMakeFiles/aedb_sql.dir/compiler.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/aedb_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/aedb_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/aedb_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/aedb_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/aedb_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/aedb_sql.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/es/CMakeFiles/aedb_es.dir/DependInfo.cmake"
  "/root/repo/build/src/keys/CMakeFiles/aedb_keys.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aedb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/aedb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/aedb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aedb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
