file(REMOVE_RECURSE
  "CMakeFiles/aedb_sql.dir/binder.cc.o"
  "CMakeFiles/aedb_sql.dir/binder.cc.o.d"
  "CMakeFiles/aedb_sql.dir/catalog.cc.o"
  "CMakeFiles/aedb_sql.dir/catalog.cc.o.d"
  "CMakeFiles/aedb_sql.dir/compiler.cc.o"
  "CMakeFiles/aedb_sql.dir/compiler.cc.o.d"
  "CMakeFiles/aedb_sql.dir/executor.cc.o"
  "CMakeFiles/aedb_sql.dir/executor.cc.o.d"
  "CMakeFiles/aedb_sql.dir/lexer.cc.o"
  "CMakeFiles/aedb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/aedb_sql.dir/parser.cc.o"
  "CMakeFiles/aedb_sql.dir/parser.cc.o.d"
  "libaedb_sql.a"
  "libaedb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aedb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
