# Empty dependencies file for aedb_sql.
# This may be replaced when dependencies are built.
