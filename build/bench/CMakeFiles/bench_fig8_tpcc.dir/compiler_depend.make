# Empty compiler generated dependencies file for bench_fig8_tpcc.
# This may be replaced when dependencies are built.
