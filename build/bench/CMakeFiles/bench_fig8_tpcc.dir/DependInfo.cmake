
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_tpcc.cc" "bench/CMakeFiles/bench_fig8_tpcc.dir/bench_fig8_tpcc.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_tpcc.dir/bench_fig8_tpcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tpcc/CMakeFiles/aedb_tpcc.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/aedb_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/aedb_server.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/aedb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aedb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/attestation/CMakeFiles/aedb_attestation.dir/DependInfo.cmake"
  "/root/repo/build/src/enclave/CMakeFiles/aedb_enclave.dir/DependInfo.cmake"
  "/root/repo/build/src/es/CMakeFiles/aedb_es.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/aedb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/keys/CMakeFiles/aedb_keys.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/aedb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aedb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
