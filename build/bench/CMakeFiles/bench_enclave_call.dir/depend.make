# Empty dependencies file for bench_enclave_call.
# This may be replaced when dependencies are built.
