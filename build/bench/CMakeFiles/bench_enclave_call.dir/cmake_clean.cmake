file(REMOVE_RECURSE
  "CMakeFiles/bench_enclave_call.dir/bench_enclave_call.cc.o"
  "CMakeFiles/bench_enclave_call.dir/bench_enclave_call.cc.o.d"
  "bench_enclave_call"
  "bench_enclave_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enclave_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
