# Empty compiler generated dependencies file for bench_fig9_det_vs_rnd.
# This may be replaced when dependencies are built.
