file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_det_vs_rnd.dir/bench_fig9_det_vs_rnd.cc.o"
  "CMakeFiles/bench_fig9_det_vs_rnd.dir/bench_fig9_det_vs_rnd.cc.o.d"
  "bench_fig9_det_vs_rnd"
  "bench_fig9_det_vs_rnd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_det_vs_rnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
